package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/runstore"
	"repro/internal/trace"
)

// ErrDraining is returned by Submit once Drain has begun: the server finishes
// what it has but accepts nothing new (HTTP 503 on the wire).
var ErrDraining = errors.New("farm: server is draining")

// ExecFunc executes one run; exactly one of the results is non-nil. The
// default is harness.RunChecked — the chaos harness swaps in flaky variants
// to prove the retry and quarantine machinery.
type ExecFunc func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure)

// Config assembles a farm server.
type Config struct {
	// Store is the shared result store (nil = no memoization: every job
	// executes, nothing survives a restart). With a store, a killed server
	// restarted over the same backend resumes any campaign: completed cells
	// are cache hits, only missing ones recompute.
	Store runstore.Backend
	// Workers sizes the execution pool. Default GOMAXPROCS.
	Workers int
	// Retry is the bounded-retry policy for retryable failures.
	Retry RetryPolicy
	// JobDeadline bounds each job's host wall time (0 = unbounded); an
	// expiry is a retryable RunFailure, not a wedged worker.
	JobDeadline time.Duration
	// Telemetry, when non-nil, is attached to every executed run and
	// served at /telemetry — the same live collector local sweeps use.
	Telemetry *trace.Live
	// Metrics, when non-nil, is attached to every executed run and served
	// at /metrics (Prometheus text) and /metrics.json.
	Metrics *metrics.Registry
	// Exec overrides the run executor (tests, chaos injection).
	Exec ExecFunc
}

// job is the server-side record of one submitted spec.
type job struct {
	key    string
	spec   JobSpec
	params harness.RunParams

	state     State
	attempts  int
	cacheHit  bool
	result    []byte
	failure   string
	retryable bool
	backoff   time.Duration
	timer     *time.Timer
	done      chan struct{} // closed on terminal state
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		Key:       j.key,
		Spec:      j.spec,
		State:     j.state,
		Attempts:  j.attempts,
		CacheHit:  j.cacheHit,
		Failure:   j.failure,
		Retryable: j.retryable,
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	if j.state == StateBackoff {
		st.BackoffMS = j.backoff.Milliseconds()
	}
	return st
}

// Server is the job-queue service: submissions dedup onto content-addressed
// jobs, a worker pool executes them through the shared result store, and
// failures follow the bounded-retry/quarantine policy. All methods are safe
// for concurrent use; Handler exposes the HTTP surface.
type Server struct {
	cfg  Config
	exec ExecFunc

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	queue    []*job
	running  int
	draining bool
	stopped  bool
	wg       sync.WaitGroup

	cacheHits atomic.Uint64
	executed  atomic.Uint64
	retries   atomic.Uint64
	dedup     atomic.Uint64
}

// NewServer starts a server with cfg's worker pool running.
func NewServer(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	cfg.Retry = cfg.Retry.withDefaults()
	s := &Server{
		cfg:  cfg,
		exec: cfg.Exec,
		jobs: make(map[string]*job),
	}
	if s.exec == nil {
		s.exec = harness.RunChecked
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit accepts one job spec. An identical spec already known to the farm —
// queued, running, backing off, or terminal — attaches to the existing job
// (in-flight dedup) whatever the drain state; genuinely new work is rejected
// with ErrDraining once a drain has begun.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	params, err := spec.Params()
	if err != nil {
		return JobStatus{}, err
	}
	params.Deadline = s.cfg.JobDeadline
	params.Telemetry = s.cfg.Telemetry
	params.Metrics = s.cfg.Metrics
	key := params.Spec().Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[key]; ok {
		s.dedup.Add(1)
		return j.statusLocked(), nil
	}
	if s.draining || s.stopped {
		return JobStatus{}, ErrDraining
	}
	j := &job{
		key:    key,
		spec:   spec,
		params: params,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	s.jobs[key] = j
	s.queue = append(s.queue, j)
	s.cond.Signal()
	return j.statusLocked(), nil
}

// SubmitMatrix expands and enqueues a whole campaign; the response lists the
// job keys in expansion order.
func (s *Server) SubmitMatrix(req MatrixRequest) (MatrixResponse, error) {
	specs, err := req.Specs()
	if err != nil {
		return MatrixResponse{}, err
	}
	resp := MatrixResponse{Jobs: make([]string, 0, len(specs))}
	for _, spec := range specs {
		st, err := s.Submit(spec)
		if err != nil {
			return MatrixResponse{}, fmt.Errorf("farm: matrix cell %s/%s retry=%d seed=%d: %w",
				spec.Benchmark, spec.Config, spec.RetryLimit, spec.Seed, err)
		}
		resp.Jobs = append(resp.Jobs, st.Key)
	}
	return resp, nil
}

// Status returns the current status of the job keyed key.
func (s *Server) Status(key string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[key]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// WaitJob blocks until the job reaches a terminal state or ctx expires
// (in-process callers; remote ones poll Status).
func (s *Server) WaitJob(ctx context.Context, key string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("farm: unknown job %s", key)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.statusLocked(), nil
}

// Quarantine returns the quarantined jobs (key order): the specs whose retry
// budget the circuit breaker exhausted. They stay out of the queue — a
// resubmission attaches here instead of burning more worker time.
func (s *Server) Quarantine() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobStatus
	for _, j := range s.jobs {
		if j.state == StateQuarantined {
			out = append(out, j.statusLocked())
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Key < out[k].Key })
	return out
}

// Stats returns the farm-wide counter snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:          s.cfg.Workers,
		Draining:         s.draining,
		CacheHits:        s.cacheHits.Load(),
		Executed:         s.executed.Load(),
		RetriesScheduled: s.retries.Load(),
		DedupAttached:    s.dedup.Load(),
	}
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateBackoff:
			st.Backoff++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateQuarantined:
			st.Quarantined++
		}
	}
	return st
}

// Drain gracefully winds the farm down: new specs are rejected, jobs waiting
// out a backoff are promoted for their final attempts immediately (no reason
// to honour a retry delay when shutdown is waiting on it), and the call
// blocks until every accepted job reaches a terminal state or ctx expires.
// Results are already persisted to the store as each job completes — there
// is nothing else to flush — so after a clean drain a restart over the same
// store resumes with only unsubmitted or unfinished cells to compute.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for _, j := range s.jobs {
		if j.state == StateBackoff && j.timer.Stop() {
			j.state = StateQueued
			s.queue = append(s.queue, j)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	for {
		s.mu.Lock()
		idle := len(s.queue) == 0 && s.running == 0
		backing := 0
		for _, j := range s.jobs {
			if j.state == StateBackoff {
				backing++
			}
		}
		s.mu.Unlock()
		if idle && backing == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops the worker pool without draining: workers finish the job in
// hand and exit; queued and backing-off jobs are abandoned where they stand.
// This is the in-process analogue of a kill — the chaos tests use it to
// leave a campaign half-done and prove a restart over the same store
// converges. Close after Drain is the clean shutdown pair.
func (s *Server) Close() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	for _, j := range s.jobs {
		if j.state == StateBackoff && j.timer != nil {
			j.timer.Stop()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// worker is one pool goroutine: pop, execute, settle, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		j.state = StateRunning
		j.attempts++
		s.running++
		s.mu.Unlock()

		payload, hit, fail := s.runJob(j)
		s.settle(j, payload, hit, fail)
	}
}

// settle applies the outcome of one execution attempt: done, a scheduled
// retry, quarantine (budget exhausted), or terminal failure.
func (s *Server) settle(j *job, payload []byte, hit bool, fail *harness.RunFailure) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	defer s.cond.Broadcast() // wake Drain's idleness re-check
	if fail == nil {
		j.state = StateDone
		j.result = payload
		j.cacheHit = hit
		j.failure = ""
		if hit {
			s.cacheHits.Add(1)
		}
		close(j.done)
		return
	}
	j.failure = fail.Reason
	j.retryable = Retryable(fail.Reason)
	switch {
	case j.retryable && j.attempts-1 < s.cfg.Retry.MaxRetries:
		d := s.cfg.Retry.Backoff(j.key, j.attempts)
		if s.draining {
			// Shutdown is waiting; the final attempts run back to back.
			d = 0
		}
		j.state = StateBackoff
		j.backoff = d
		s.retries.Add(1)
		j.timer = time.AfterFunc(d, func() { s.requeue(j) })
	case j.retryable:
		// Retry budget exhausted: the breaker opens. The spec sits in the
		// quarantine report instead of cycling through the queue forever.
		j.state = StateQuarantined
		close(j.done)
	default:
		j.state = StateFailed
		close(j.done)
	}
}

// requeue moves a backoff job whose delay elapsed back onto the queue.
func (s *Server) requeue(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateBackoff || s.stopped {
		return
	}
	j.state = StateQueued
	s.queue = append(s.queue, j)
	s.cond.Signal()
}

// runJob produces the job's result payload: from the shared store when the
// spec is already memoized (that lookup is what makes a restarted campaign
// resume), otherwise by executing and persisting the summary.
func (s *Server) runJob(j *job) (payload []byte, hit bool, fail *harness.RunFailure) {
	if r, ok := harness.LookupCached(s.cfg.Store, j.params); ok {
		if t := s.cfg.Telemetry; t != nil {
			t.CacheHit()
		}
		if b, err := harness.EncodeCacheRecord(r); err == nil {
			return b, true, nil
		}
		// Encode of a decoded record cannot fail in practice; recompute.
	}
	if s.cfg.Store != nil {
		if t := s.cfg.Telemetry; t != nil {
			t.CacheMiss()
		}
	}
	res, fail := s.safeExec(j.params)
	if fail != nil {
		return nil, false, fail
	}
	// A store write failure is non-fatal, exactly like the local sweep: the
	// result is correct, only un-memoized.
	_ = harness.StoreCached(s.cfg.Store, res)
	b, err := harness.EncodeCacheRecord(res)
	if err != nil {
		return nil, false, &harness.RunFailure{
			Benchmark:  j.params.Benchmark,
			Config:     j.params.Config,
			RetryLimit: j.params.RetryLimit,
			Seed:       j.params.Seed,
			Reason:     "encode result: " + err.Error(),
		}
	}
	return b, false, nil
}

// safeExec isolates worker panics: a crash in (or injected under) the
// executor becomes a retryable RunFailure instead of killing the pool
// goroutine and silently shrinking the farm.
func (s *Server) safeExec(p harness.RunParams) (res *harness.RunResult, fail *harness.RunFailure) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			fail = &harness.RunFailure{
				Benchmark:  p.Benchmark,
				Config:     p.Config,
				RetryLimit: p.RetryLimit,
				Seed:       p.Seed,
				Reason:     fmt.Sprintf("worker panic: %v", r),
				Stack:      string(debug.Stack()),
			}
		}
	}()
	s.executed.Add(1)
	return s.exec(p)
}

// Handler returns the farm's HTTP surface:
//
//	POST /jobs        submit one JobSpec -> JobStatus (503 while draining)
//	GET  /jobs/{key}  poll one job -> JobStatus
//	POST /matrix      submit a MatrixRequest -> MatrixResponse
//	GET  /quarantine  quarantined specs -> []JobStatus
//	GET  /farm        farm-wide counters -> Stats
//	GET  /healthz     "ok" (or "draining")
//
// plus /telemetry and /metrics//metrics.json when the corresponding
// collectors are configured.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "farm: bad job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			httpSubmitError(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /jobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("key"))
		if !ok {
			http.Error(w, "farm: unknown job", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /matrix", func(w http.ResponseWriter, r *http.Request) {
		var req MatrixRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "farm: bad matrix request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.SubmitMatrix(req)
		if err != nil {
			httpSubmitError(w, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /quarantine", func(w http.ResponseWriter, r *http.Request) {
		q := s.Quarantine()
		if q == nil {
			q = []JobStatus{}
		}
		writeJSON(w, q)
	})
	mux.HandleFunc("GET /farm", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Telemetry != nil {
		mux.Handle("GET /telemetry", s.cfg.Telemetry.Handler())
	}
	if s.cfg.Metrics != nil {
		mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
		mux.Handle("GET /metrics.json", s.cfg.Metrics.JSONHandler())
	}
	return mux
}

func httpSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrDraining) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
