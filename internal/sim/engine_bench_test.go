package sim

import "testing"

// BenchmarkEngineScheduleStep measures the raw schedule+dispatch cost of the
// event engine under the delay mix the simulator actually produces: the
// dominant near-future delays (0, 1, and an L1-hit-like 1) plus a tail of
// directory-latency events that exercise the far-future path. The workload
// keeps a small standing population of events so both the fast lane and the
// heap stay busy.
func BenchmarkEngineScheduleStep(b *testing.B) {
	delays := [8]Tick{0, 1, 1, 0, 1, 45, 1, 97}
	b.ReportAllocs()
	b.ResetTimer()
	e := NewEngine()
	n := 0
	var pump func()
	pump = func() {
		if n >= b.N {
			return
		}
		e.Schedule(delays[n&7], pump)
		n++
	}
	// Standing population: a few pumps in flight at once.
	for i := 0; i < 4 && i < b.N; i++ {
		e.Schedule(delays[i&7], pump)
		n++
	}
	e.Run()
}

// BenchmarkEngineFarFuture isolates the heap path: every event lands beyond
// the near-future fast lane.
func BenchmarkEngineFarFuture(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	e := NewEngine()
	n := 0
	var pump func()
	pump = func() {
		if n >= b.N {
			return
		}
		e.Schedule(1000+Tick(n&127), pump)
		n++
	}
	for i := 0; i < 4 && i < b.N; i++ {
		e.Schedule(1000+Tick(i), pump)
		n++
	}
	e.Run()
}
