package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero (xorshift fixed point)")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 10_000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

// TestPermIsPermutation: Perm(n) is always a permutation of [0, n).
func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Split()
	// Draw from the child; the parent's subsequent stream must match a
	// parent that split without drawing.
	for i := 0; i < 10; i++ {
		child.Uint64()
	}
	p2 := NewRNG(5)
	p2.Split()
	for i := 0; i < 100; i++ {
		if parent.Uint64() != p2.Uint64() {
			t.Fatal("child draws perturbed the parent stream")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(11)
	z := NewZipf(rng, 1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 50_000; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[50]*5 {
		t.Fatalf("no skew: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Every rank remains reachable in principle; at least the head ranks
	// must all have been drawn.
	for r := 0; r < 5; r++ {
		if counts[r] == 0 {
			t.Fatalf("head rank %d never drawn", r)
		}
	}
}

func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(NewRNG(3), 0.9, 40)
	b := NewZipf(NewRNG(3), 0.9, 40)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zipf streams diverged for equal seeds")
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 1, 0)
}
