package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock %d, want 30", e.Now())
	}
}

func TestEngineSameTickFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick events reordered at %d: got %d", i, v)
		}
	}
}

func TestEngineZeroDelayRunsSameTick(t *testing.T) {
	e := NewEngine()
	var at []Tick
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 1 || at[0] != 7 {
		t.Fatalf("zero-delay event ran at %v, want [7]", at)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 1000 {
			e.Schedule(1, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run()
	if depth != 1000 {
		t.Fatalf("depth %d, want 1000", depth)
	}
	if e.Now() != 999 {
		t.Fatalf("clock %d, want 999", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(100, func() { ran++ })
	if drained := e.RunUntil(50); drained {
		t.Fatal("queue should not have drained")
	}
	if ran != 1 {
		t.Fatalf("ran %d events before deadline, want 1", ran)
	}
	if e.Now() != 50 {
		t.Fatalf("clock %d, want 50 (deadline)", e.Now())
	}
	if drained := e.RunUntil(1000); !drained {
		t.Fatal("queue should have drained")
	}
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran %d", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(0, nil)
}

// TestEnginePropertyMonotonicClock: no event ever observes a clock earlier
// than a previously executed event, for random delay sequences.
func TestEnginePropertyMonotonicClock(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		last := Tick(0)
		ok := true
		for _, d := range delays {
			e.Schedule(Tick(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
