package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64star). The simulator cannot use math/rand's global state: every
// simulated run must be reproducible from a single seed regardless of what
// other code does, and the harness runs many simulations concurrently.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator; used to give each simulated thread
// its own stream so that adding threads does not perturb existing ones.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

// Zipf draws from a Zipf-like distribution over [0, n): rank r is sampled
// with probability proportional to 1/(r+1)^s. Workload generators use it to
// skew accesses toward hot keys, the standard way to dial contention.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf prepares a sampler over n ranks with exponent s > 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("sim: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next returns the next sampled rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
