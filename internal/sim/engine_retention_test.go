package sim

import (
	"runtime"
	"testing"
)

// TestHeapPopReleasesEvents checks the latent-retention fix in the far-future
// heap: popping must zero the vacated tail slot so the retired event's
// closure is not kept reachable by the backing array. Before the fix,
// `h = h[:n-1]` left the moved element's old copy (and its captured state)
// live in h[n-1] for as long as the engine existed.
func TestHeapPopReleasesEvents(t *testing.T) {
	e := NewEngine()
	// All delays >= laneTicks so every event goes through the heap.
	for i := 0; i < 100; i++ {
		e.Schedule(Tick(laneTicks+i), func() {})
	}
	for e.Step() {
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	// Inspect the heap's full backing array, including slots past len().
	full := e.heap[:cap(e.heap)]
	for i, ev := range full {
		if ev.call != nil {
			t.Fatalf("heap backing slot %d still retains an event closure after drain", i)
		}
	}
}

// TestLanePopReleasesEvents checks the same property for the fast-lane
// buckets: consumed slots are bulk-cleared when a bucket drains and rewinds,
// so no retired closure stays reachable through a bucket's backing array.
func TestLanePopReleasesEvents(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4*laneTicks; i++ {
		e.Schedule(Tick(i%laneTicks), func() {})
	}
	for e.Step() {
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	for b := range e.lane {
		bucket := &e.lane[b]
		full := bucket.evs[:cap(bucket.evs)]
		for i, ev := range full {
			if ev.call != nil {
				t.Fatalf("lane bucket %d slot %d still retains an event closure after drain", b, i)
			}
		}
	}
}

// holdingRef builds an event whose closure keeps p reachable for as long as
// the closure itself is reachable (the parameter gives the closure its own
// capture cell, independent of the caller's variable).
func holdingRef(p *[1 << 16]byte) Event {
	return func() {
		if p == nil {
			panic("payload vanished before the event ran")
		}
	}
}

// TestRetiredEventsAreCollectable is the end-to-end GC check: an event
// closure capturing a finalized allocation must become collectable once the
// event has run, even though the engine (with its retained backing arrays)
// lives on.
func TestRetiredEventsAreCollectable(t *testing.T) {
	e := NewEngine()
	collected := make(chan struct{})
	// Schedule enough sibling events that the captured payload's slot is an
	// interior element of both the heap and a lane bucket at some point.
	for i := 0; i < 32; i++ {
		e.Schedule(Tick(i), func() {})
		e.Schedule(Tick(laneTicks+i), func() {})
	}
	payload := new([1 << 16]byte)
	runtime.SetFinalizer(payload, func(*[1 << 16]byte) { close(collected) })
	e.Schedule(laneTicks+5, holdingRef(payload))
	payload = nil
	for e.Step() {
	}
	// The engine is still alive (and referenced below); only the retired
	// closure should keep the payload, and it must not.
	for i := 0; i < 10; i++ {
		runtime.GC()
		select {
		case <-collected:
			if e.Pending() != 0 {
				t.Fatalf("queue not drained: %d pending", e.Pending())
			}
			return
		default:
		}
	}
	t.Fatal("retired event closure still reachable: engine retains executed events")
}

// TestLaneBucketWrapAroundDrain exercises the batched bucket drain across a
// full lane revolution: bucket index (t & laneMask) serves tick t and then
// tick t+laneTicks, with a far-future heap event landing exactly on the
// wrapped tick. The (tick, seq) total order must hold throughout — the heap
// event, scheduled first, carries the lowest sequence number at the wrapped
// tick and must interleave ahead of the lane events that arrive later — and
// every bucket must release its slots once drained.
func TestLaneBucketWrapAroundDrain(t *testing.T) {
	e := NewEngine()
	type rec struct {
		at  Tick
		tag int
	}
	var got []rec
	note := func(tag int) Event {
		return func() { got = append(got, rec{e.Now(), tag}) }
	}

	const base = 7
	const wrapped = Tick(base + laneTicks) // same bucket index as base

	// Delay >= laneTicks routes through the heap; this event lands on the
	// wrapped tick with the lowest seq there.
	e.Schedule(wrapped, note(100))

	// A FIFO batch at tick base fills bucket index base the first time.
	for i := 0; i < 3; i++ {
		e.Schedule(base, note(i))
	}
	// Refill the same bucket one lane revolution later: a callback at
	// base+laneTicks-1 schedules delay 1, landing at base+laneTicks — bucket
	// index base again, now holding the wrapped tick.
	e.Schedule(base, func() {
		e.Schedule(laneTicks-1, func() {
			got = append(got, rec{e.Now(), 50})
			for i := 0; i < 3; i++ {
				e.Schedule(1, note(200+i))
			}
		})
	})

	e.Run()

	want := []rec{
		{base, 0}, {base, 1}, {base, 2},
		{base + laneTicks - 1, 50},
		{wrapped, 100}, // heap event first: same tick, lowest seq
		{wrapped, 200}, {wrapped, 201}, {wrapped, 202},
	}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got {tick %d, tag %d}, want {tick %d, tag %d}\nfull order: %v",
				i, got[i].at, got[i].tag, want[i].at, want[i].tag, got)
		}
	}

	// After the drain every bucket is rewound and its backing array zeroed.
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	for b := range e.lane {
		bucket := &e.lane[b]
		if bucket.head != 0 || len(bucket.evs) != 0 {
			t.Fatalf("bucket %d not rewound after drain: head=%d len=%d", b, bucket.head, len(bucket.evs))
		}
		for i, ev := range bucket.evs[:cap(bucket.evs)] {
			if ev.call != nil {
				t.Fatalf("bucket %d slot %d retains a closure after wrap-around drain", b, i)
			}
		}
	}
}
