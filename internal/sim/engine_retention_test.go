package sim

import (
	"runtime"
	"testing"
)

// TestHeapPopReleasesEvents checks the latent-retention fix in the far-future
// heap: popping must zero the vacated tail slot so the retired event's
// closure is not kept reachable by the backing array. Before the fix,
// `h = h[:n-1]` left the moved element's old copy (and its captured state)
// live in h[n-1] for as long as the engine existed.
func TestHeapPopReleasesEvents(t *testing.T) {
	e := NewEngine()
	// All delays >= laneTicks so every event goes through the heap.
	for i := 0; i < 100; i++ {
		e.Schedule(Tick(laneTicks+i), func() {})
	}
	for e.Step() {
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	// Inspect the heap's full backing array, including slots past len().
	full := e.heap[:cap(e.heap)]
	for i, ev := range full {
		if ev.call != nil {
			t.Fatalf("heap backing slot %d still retains an event closure after drain", i)
		}
	}
}

// TestLanePopReleasesEvents checks the same property for the fast-lane
// buckets: a popped slot must be zeroed immediately (not merely when the
// bucket is rewound), so closures become garbage as soon as they run.
func TestLanePopReleasesEvents(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4*laneTicks; i++ {
		e.Schedule(Tick(i%laneTicks), func() {})
	}
	for e.Step() {
	}
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	for b := range e.lane {
		bucket := &e.lane[b]
		full := bucket.evs[:cap(bucket.evs)]
		for i, ev := range full {
			if ev.call != nil {
				t.Fatalf("lane bucket %d slot %d still retains an event closure after drain", b, i)
			}
		}
	}
}

// holdingRef builds an event whose closure keeps p reachable for as long as
// the closure itself is reachable (the parameter gives the closure its own
// capture cell, independent of the caller's variable).
func holdingRef(p *[1 << 16]byte) Event {
	return func() {
		if p == nil {
			panic("payload vanished before the event ran")
		}
	}
}

// TestRetiredEventsAreCollectable is the end-to-end GC check: an event
// closure capturing a finalized allocation must become collectable once the
// event has run, even though the engine (with its retained backing arrays)
// lives on.
func TestRetiredEventsAreCollectable(t *testing.T) {
	e := NewEngine()
	collected := make(chan struct{})
	// Schedule enough sibling events that the captured payload's slot is an
	// interior element of both the heap and a lane bucket at some point.
	for i := 0; i < 32; i++ {
		e.Schedule(Tick(i), func() {})
		e.Schedule(Tick(laneTicks+i), func() {})
	}
	payload := new([1 << 16]byte)
	runtime.SetFinalizer(payload, func(*[1 << 16]byte) { close(collected) })
	e.Schedule(laneTicks+5, holdingRef(payload))
	payload = nil
	for e.Step() {
	}
	// The engine is still alive (and referenced below); only the retired
	// closure should keep the payload, and it must not.
	for i := 0; i < 10; i++ {
		runtime.GC()
		select {
		case <-collected:
			if e.Pending() != 0 {
				t.Fatalf("queue not drained: %d pending", e.Pending())
			}
			return
		default:
		}
	}
	t.Fatal("retired event closure still reachable: engine retains executed events")
}
