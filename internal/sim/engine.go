// Package sim provides the deterministic discrete-event simulation engine
// that drives every timed component of the CLEAR reproduction: cores,
// caches, the coherence directory, and the interconnect.
//
// Events are totally ordered by (tick, sequence number); the sequence number
// makes the order total and therefore the whole simulation deterministic:
// two runs with the same seed produce bit-identical statistics, a property
// the test suite checks at both the engine and the machine level.
//
// The engine is the hottest host code in the simulator — every simulated
// load, store, and branch passes through Schedule and Step — so its data
// structures are chosen for zero steady-state allocation:
//
//   - Near-future events (delay < laneTicks, the dominant 0/1/L1-hit
//     delays) go to a ring of per-tick FIFO buckets ("fast lane") and never
//     touch the heap. Appending to a bucket reuses its backing array.
//   - Far-future events go to a monomorphic binary min-heap of
//     scheduledEvent values: no container/heap, no interface boxing, no
//     per-push allocation.
//   - Popped slots (heap and lane) are zeroed so retired event closures
//     become garbage immediately instead of being retained by backing
//     arrays.
package sim

import (
	"fmt"
	"math/bits"
)

// Tick is the simulated clock, measured in core cycles.
type Tick uint64

// Event is a callback scheduled to run at a specific tick. Callers on hot
// paths should pass pre-bound function values (method values created once,
// not per call) so scheduling does not allocate.
type Event func()

type scheduledEvent struct {
	at   Tick
	seq  uint64
	call Event
}

// less is the total event order: earlier tick first, then earlier sequence
// number (FIFO within a tick).
func (a scheduledEvent) less(b scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// laneTicks is the fast-lane horizon: events with delay < laneTicks are
// bucketed per tick instead of entering the heap. 256 covers every latency
// the memory hierarchy composes on the hot path — including a full memory
// fetch (two crossbar links + directory + DRAM ≈ 137 ticks) — so the heap
// only sees long think times, backoff tails, and watchdog timers. The
// nonempty-bucket scan is a four-word bitmap walk, so widening the horizon
// does not lengthen the search. Must be a power of two.
const laneTicks = 256

const laneMask = laneTicks - 1

// laneWords is the occupancy bitmap size: one bit per bucket.
const laneWords = laneTicks / 64

// laneBucket is one tick's FIFO of near-future events. head indexes the
// next event to pop; events append at the tail in sequence order, so a
// bucket is always sorted by seq.
type laneBucket struct {
	head int
	evs  []scheduledEvent
}

// Engine is a discrete-event scheduler. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now     Tick
	seq     uint64
	stopped bool

	// lane holds events with at in [now, now+laneTicks), indexed by
	// at&laneMask; laneLen is the total number of events across buckets.
	// occ has one bit per bucket (set while the bucket is nonempty), so
	// finding the earliest pending tick is a short bitmap walk instead of
	// a bucket-by-bucket scan.
	lane    [laneTicks]laneBucket
	occ     [laneWords]uint64
	laneLen int

	// heap is a binary min-heap (by scheduledEvent.less) of far-future
	// events.
	heap []scheduledEvent

	// Executed counts how many events have run; exposed for tests and for
	// the harness's progress accounting.
	Executed uint64

	// perturb, when non-nil, maps each Schedule delay to the delay actually
	// used (the fault-injection seam: bounded random extra latency). Nil by
	// default: Schedule pays one pointer comparison.
	perturb func(Tick) Tick
}

// NewEngine returns an engine with an empty event queue at tick zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated tick.
func (e *Engine) Now() Tick { return e.now }

// Schedule runs call after delay ticks. A delay of zero runs the event in
// the current tick, after all events already scheduled for this tick.
func (e *Engine) Schedule(delay Tick, call Event) {
	if call == nil {
		panic("sim: Schedule called with nil event")
	}
	if e.perturb != nil {
		delay = e.perturb(delay)
	}
	e.seq++
	ev := scheduledEvent{at: e.now + delay, seq: e.seq, call: call}
	if delay < laneTicks {
		idx := int(ev.at) & laneMask
		b := &e.lane[idx]
		if len(b.evs) == 0 {
			e.occ[idx>>6] |= 1 << (uint(idx) & 63)
		}
		b.evs = append(b.evs, ev)
		e.laneLen++
		return
	}
	e.heapPush(ev)
}

// SetDelayPerturb installs (or, with nil, removes) a delay-perturbation
// function applied to every Schedule call. Fault injection uses it to add
// bounded random latency to scheduled events; the perturbation must be
// deterministic for the run to stay reproducible.
func (e *Engine) SetDelayPerturb(f func(Tick) Tick) { e.perturb = f }

// ScheduleAt runs call at an absolute tick, which must not be in the past.
func (e *Engine) ScheduleAt(at Tick, call Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) is in the past (now %d)", at, e.now))
	}
	e.Schedule(at-e.now, call)
}

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.laneLen + len(e.heap) }

// Stop makes the currently running Run or RunUntil call return after the
// in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// nextLane returns the bucket holding the earliest lane event and its tick.
// Only call with e.laneLen > 0. The walk covers the occupancy bitmap once,
// starting at now's bucket: the first word is masked to bits at or after
// now, the wrapped-around revisit of that word to bits before it.
func (e *Engine) nextLane() (*laneBucket, Tick) {
	s := uint(e.now) & laneMask
	w0, b0 := int(s>>6), s&63
	for k := 0; k <= laneWords; k++ {
		w := (w0 + k) & (laneWords - 1)
		x := e.occ[w]
		if k == 0 {
			x &= ^uint64(0) << b0
		} else if k == laneWords {
			x &= uint64(1)<<b0 - 1
		}
		if x == 0 {
			continue
		}
		idx := w<<6 + bits.TrailingZeros64(x)
		return &e.lane[idx], e.now + Tick((uint(idx)-s)&laneMask)
	}
	panic("sim: laneLen > 0 but occupancy bitmap empty")
}

// nextAt returns the tick of the next event without popping it.
func (e *Engine) nextAt() (Tick, bool) {
	if e.laneLen > 0 {
		_, at := e.nextLane()
		// A heap event can never precede a lane event at an earlier tick,
		// but at the same tick the lane event still wins only if its seq is
		// lower; for the peeked *tick* the minimum of the two is exact.
		if len(e.heap) > 0 && e.heap[0].at < at {
			return e.heap[0].at, true
		}
		return at, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// Step drains every event due at the next pending tick (one batch) and
// returns true, or returns false if the queue is empty. Batching keeps the
// scheduler out of the per-event path: the bucket for the tick is located
// once and its FIFO consumed in place, with the (tick, seq) total order
// preserved — far-future heap events that land on the same tick are
// interleaved by sequence number, and events a callback schedules with zero
// delay append to the same bucket and run within the batch. If Stop is
// called mid-batch the remaining same-tick events stay queued; the next
// Step resumes the same tick.
func (e *Engine) Step() bool {
	var t Tick
	if e.laneLen > 0 {
		_, t = e.nextLane()
		if len(e.heap) > 0 && e.heap[0].at < t {
			t = e.heap[0].at
		}
	} else if len(e.heap) > 0 {
		t = e.heap[0].at
	} else {
		return false
	}
	e.stepAt(t)
	return true
}

// stepAt drains the batch due at tick t, which the caller has already
// located (Step via its own scan, RunUntil via nextAt — sharing the scan
// keeps the bitmap walk off the per-batch path twice).
func (e *Engine) stepAt(t Tick) {
	e.now = t
	idx := int(t) & laneMask
	b := &e.lane[idx]
	// Whether the heap's minimum lands on this very tick is monotone within
	// the batch: every pending heap event has at >= t, and a callback's
	// far-future push lands at >= t+laneTicks, so the flag only changes at a
	// heapPop — hoisting it keeps the heap peek off the per-event path.
	heapSame := len(e.heap) > 0 && e.heap[0].at == t
	for {
		var ev scheduledEvent
		if b.head < len(b.evs) {
			ev = b.evs[b.head]
			if heapSame && e.heap[0].seq < ev.seq {
				ev = e.heapPop()
				heapSame = len(e.heap) > 0 && e.heap[0].at == t
			} else {
				b.head++
				if b.head == len(b.evs) {
					// Drained: zero the consumed slots in one bulk clear so
					// retired closures become garbage, then rewind, keeping
					// the backing array for reuse.
					clear(b.evs)
					b.evs = b.evs[:0]
					b.head = 0
					e.occ[idx>>6] &^= 1 << (uint(idx) & 63)
				}
				e.laneLen--
			}
		} else if heapSame {
			ev = e.heapPop()
			heapSame = len(e.heap) > 0 && e.heap[0].at == t
		} else {
			return
		}
		e.Executed++
		ev.call()
		if e.stopped {
			return
		}
	}
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with tick <= deadline. Events scheduled past the
// deadline remain queued. It returns true if the queue drained.
func (e *Engine) RunUntil(deadline Tick) bool {
	e.stopped = false
	for !e.stopped {
		at, ok := e.nextAt()
		if !ok {
			return true
		}
		if at > deadline {
			e.now = deadline
			return false
		}
		e.stepAt(at)
	}
	return e.Pending() == 0
}

// heapPush inserts ev into the far-future heap (monomorphic sift-up).
func (e *Engine) heapPush(ev scheduledEvent) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].less(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// heapPop removes the minimum event (monomorphic sift-down). The vacated
// tail slot is zeroed so the popped event's closure is not retained by the
// backing array.
func (e *Engine) heapPop() scheduledEvent {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = scheduledEvent{}
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].less(h[l]) {
			m = r
		}
		if !h[m].less(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.heap = h
	return top
}
