// Package sim provides the deterministic discrete-event simulation engine
// that drives every timed component of the CLEAR reproduction: cores,
// caches, the coherence directory, and the interconnect.
//
// The engine keeps a binary heap of events ordered by (tick, sequence
// number). The sequence number makes event ordering total and therefore the
// whole simulation deterministic: two runs with the same seed produce
// bit-identical statistics, a property the test suite checks.
package sim

import (
	"container/heap"
	"fmt"
)

// Tick is the simulated clock, measured in core cycles.
type Tick uint64

// Event is a callback scheduled to run at a specific tick.
type Event func()

type scheduledEvent struct {
	at   Tick
	seq  uint64
	call Event
}

type eventHeap []scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduledEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now     Tick
	seq     uint64
	queue   eventHeap
	stopped bool

	// Executed counts how many events have run; exposed for tests and for
	// the harness's progress accounting.
	Executed uint64
}

// NewEngine returns an engine with an empty event queue at tick zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulated tick.
func (e *Engine) Now() Tick { return e.now }

// Schedule runs call after delay ticks. A delay of zero runs the event in
// the current tick, after all events already scheduled for this tick.
func (e *Engine) Schedule(delay Tick, call Event) {
	if call == nil {
		panic("sim: Schedule called with nil event")
	}
	e.seq++
	heap.Push(&e.queue, scheduledEvent{at: e.now + delay, seq: e.seq, call: call})
}

// ScheduleAt runs call at an absolute tick, which must not be in the past.
func (e *Engine) ScheduleAt(at Tick, call Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) is in the past (now %d)", at, e.now))
	}
	e.Schedule(at-e.now, call)
}

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the currently running Run or RunUntil call return after the
// in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event and returns true, or returns false if
// the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(scheduledEvent)
	e.now = ev.at
	e.Executed++
	ev.call()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with tick <= deadline. Events scheduled past the
// deadline remain queued. It returns true if the queue drained.
func (e *Engine) RunUntil(deadline Tick) bool {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			return true
		}
		if e.queue[0].at > deadline {
			e.now = deadline
			return false
		}
		e.Step()
	}
	return len(e.queue) == 0
}
