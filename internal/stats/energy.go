package stats

import "repro/internal/coherence"

// EnergyModel is the event-counting substitute for McPAT: total energy is
// static power integrated over the run plus a per-event dynamic charge. The
// coefficients are abstract (arbitrary units); only ratios between
// configurations are meaningful, which is also how the paper reports energy
// (normalized to requester-wins).
type EnergyModel struct {
	// StaticPerCoreCycle is leakage+clock energy per core per cycle.
	StaticPerCoreCycle float64
	// DynamicPerInstr covers fetch/decode/execute of one instruction.
	DynamicPerInstr float64
	// DynamicPerL1Access covers an L1 lookup.
	DynamicPerL1Access float64
	// DynamicPerDirectoryOp covers a directory transaction (L3 tag+TSV).
	DynamicPerDirectoryOp float64
	// DynamicPerMemoryFetch covers a DRAM access.
	DynamicPerMemoryFetch float64
	// DynamicPerNetworkMsg covers one interconnect message (invalidations,
	// nacks, forwards, retries).
	DynamicPerNetworkMsg float64
	// DynamicPerHop covers one link traversal (topology-dependent; the
	// mesh pays more hops than the crossbar for the same traffic).
	DynamicPerHop float64
}

// DefaultEnergyModel returns coefficients with McPAT-like proportions for a
// 22nm out-of-order core: static energy dominates at low activity, DRAM
// accesses are roughly two orders of magnitude costlier than an L1 access.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		StaticPerCoreCycle:    0.30,
		DynamicPerInstr:       1.0,
		DynamicPerL1Access:    0.5,
		DynamicPerDirectoryOp: 5.0,
		DynamicPerMemoryFetch: 60.0,
		DynamicPerNetworkMsg:  2.0,
		DynamicPerHop:         0.5,
	}
}

// Energy computes the run's total energy in abstract units.
func (m EnergyModel) Energy(r *Run, dir coherence.Stats, cores int) float64 {
	static := m.StaticPerCoreCycle * float64(r.Cycles) * float64(cores)
	instr := m.DynamicPerInstr * float64(r.Instructions+r.AbortedInstructions)
	l1 := m.DynamicPerL1Access * float64(r.L1Accesses)
	dirOps := m.DynamicPerDirectoryOp * float64(dir.Reads+dir.Writes+dir.Locks+dir.Unlocks)
	mems := m.DynamicPerMemoryFetch * float64(dir.MemoryFetches)
	msgs := m.DynamicPerNetworkMsg * float64(dir.Invalidations+dir.Downgrades+dir.Nacks+dir.Retries+dir.Forwards)
	hops := m.DynamicPerHop * float64(dir.Hops)
	return static + instr + l1 + dirOps + mems + msgs + hops
}

// Breakdown itemises the energy of a run per component; the clearsim report
// prints it so the static/dynamic split behind Figure 10 is inspectable.
type Breakdown struct {
	Static    float64
	Instr     float64
	L1        float64
	Directory float64
	Memory    float64
	Network   float64
	Total     float64
}

// EnergyBreakdown computes the per-component split of Energy.
func (m EnergyModel) EnergyBreakdown(r *Run, dir coherence.Stats, cores int) Breakdown {
	b := Breakdown{
		Static:    m.StaticPerCoreCycle * float64(r.Cycles) * float64(cores),
		Instr:     m.DynamicPerInstr * float64(r.Instructions+r.AbortedInstructions),
		L1:        m.DynamicPerL1Access * float64(r.L1Accesses),
		Directory: m.DynamicPerDirectoryOp * float64(dir.Reads+dir.Writes+dir.Locks+dir.Unlocks),
		Memory:    m.DynamicPerMemoryFetch * float64(dir.MemoryFetches),
		Network: m.DynamicPerNetworkMsg*float64(dir.Invalidations+dir.Downgrades+dir.Nacks+dir.Retries+dir.Forwards) +
			m.DynamicPerHop*float64(dir.Hops),
	}
	b.Total = b.Static + b.Instr + b.L1 + b.Directory + b.Memory + b.Network
	return b
}
