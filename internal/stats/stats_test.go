package stats

import (
	"math"
	"testing"

	"repro/internal/coherence"
	"repro/internal/htm"
)

func TestRecordCommitBuckets(t *testing.T) {
	var r Run
	r.RecordCommit(CommitSpeculative, 0)
	r.RecordCommit(CommitSpeculative, 1)
	r.RecordCommit(CommitSCL, 1)
	r.RecordCommit(CommitNSCL, 2)
	r.RecordCommit(CommitFallback, 9)
	if r.Commits != 5 {
		t.Fatalf("commits %d", r.Commits)
	}
	if r.CommitsByRetries[0] != 1 || r.CommitsByRetries[1] != 2 || r.CommitsByRetries[2] != 1 {
		t.Fatalf("retry histogram %v", r.CommitsByRetries)
	}
	// Fallback commits never land in the retry histogram.
	if r.CommitsByRetries[9] != 0 {
		t.Fatal("fallback commit entered retry histogram")
	}
	if r.RetryingCommits() != 4 { // 2 at retry1 + 1 at retry2 + 1 fallback
		t.Fatalf("retrying commits %d, want 4", r.RetryingCommits())
	}
	if got := r.FirstRetryShare(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("first-retry share %v, want 0.5", got)
	}
	if got := r.FallbackShare(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("fallback share %v, want 0.25", got)
	}
}

func TestRetryOverflowCapped(t *testing.T) {
	var r Run
	r.RecordCommit(CommitSpeculative, MaxRetryTrack+10)
	if r.CommitsByRetries[MaxRetryTrack] != 1 {
		t.Fatal("deep retry not capped into the last bucket")
	}
}

func TestAbortAccounting(t *testing.T) {
	var r Run
	r.RecordAbort(htm.AbortMemoryConflict)
	r.RecordAbort(htm.AbortCapacity)
	r.RecordAbort(htm.AbortExplicitFallback)
	r.RecordCommit(CommitSpeculative, 0)
	if r.AbortsPerCommit() != 3 {
		t.Fatalf("aborts/commit %v", r.AbortsPerCommit())
	}
	if r.AbortsByBucket[htm.BucketMemoryConflict] != 1 ||
		r.AbortsByBucket[htm.BucketOthers] != 1 ||
		r.AbortsByBucket[htm.BucketExplicitFallback] != 1 {
		t.Fatalf("bucket counts %v", r.AbortsByBucket)
	}
}

func TestZeroDenominators(t *testing.T) {
	var r Run
	if r.AbortsPerCommit() != 0 || r.FirstRetryShare() != 0 || r.FallbackShare() != 0 ||
		r.DiscoveryOverhead(32) != 0 || r.Fig1Ratio() != 0 {
		t.Fatal("zero-denominator metrics must be 0")
	}
}

func TestDiscoveryOverhead(t *testing.T) {
	r := Run{Cycles: 1000, DiscoveryCycles: 3200}
	if got := r.DiscoveryOverhead(32); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("overhead %v, want 0.1", got)
	}
}

func TestEnergyModelComponents(t *testing.T) {
	m := DefaultEnergyModel()
	var dir coherence.Stats
	base := m.Energy(&Run{Cycles: 1000}, dir, 32)
	if base <= 0 {
		t.Fatal("static energy missing")
	}
	withWork := m.Energy(&Run{Cycles: 1000, Instructions: 5000}, dir, 32)
	if withWork <= base {
		t.Fatal("instructions add no dynamic energy")
	}
	wasted := m.Energy(&Run{Cycles: 1000, Instructions: 5000, AbortedInstructions: 5000}, dir, 32)
	if wasted <= withWork {
		t.Fatal("aborted work adds no dynamic energy")
	}
	dir.MemoryFetches = 100
	withMem := m.Energy(&Run{Cycles: 1000, Instructions: 5000}, dir, 32)
	if withMem <= withWork {
		t.Fatal("memory fetches add no energy")
	}
	// Longer runs cost more static energy.
	longer := m.Energy(&Run{Cycles: 2000}, coherence.Stats{}, 32)
	if longer <= base {
		t.Fatal("static energy not proportional to cycles")
	}
}

func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	m := DefaultEnergyModel()
	r := &Run{Cycles: 1000, Instructions: 500, AbortedInstructions: 100, L1Accesses: 300}
	dir := coherence.Stats{Reads: 50, Writes: 20, Invalidations: 5, MemoryFetches: 9, Hops: 140, Locks: 3, Unlocks: 3}
	b := m.EnergyBreakdown(r, dir, 8)
	if got, want := b.Total, m.Energy(r, dir, 8); math.Abs(got-want) > 1e-6 {
		t.Fatalf("breakdown total %v != Energy %v", got, want)
	}
	sum := b.Static + b.Instr + b.L1 + b.Directory + b.Memory + b.Network
	if math.Abs(sum-b.Total) > 1e-6 {
		t.Fatal("components do not sum to total")
	}
}

func TestLatencyHistogram(t *testing.T) {
	var r Run
	if r.LatencyPercentile(0.5) != 0 {
		t.Fatal("empty histogram percentile not 0")
	}
	// 90 fast invocations (~16 cycles), 10 slow (~4096 cycles).
	for i := 0; i < 90; i++ {
		r.RecordLatency(16)
	}
	for i := 0; i < 10; i++ {
		r.RecordLatency(4096)
	}
	if p50 := r.LatencyPercentile(0.50); p50 > 64 {
		t.Fatalf("p50 %d, want <= 64", p50)
	}
	if p99 := r.LatencyPercentile(0.99); p99 < 4096 {
		t.Fatalf("p99 %d, want >= 4096", p99)
	}
	// Percentiles are monotone in p.
	if r.LatencyPercentile(0.2) > r.LatencyPercentile(0.9) {
		t.Fatal("percentiles not monotone")
	}
}

func TestPerARStats(t *testing.T) {
	var r Run
	r.RecordCommitAR(1, "a/x", CommitSCL)
	r.RecordCommitAR(1, "a/x", CommitSpeculative)
	r.RecordCommitAR(2, "a/y", CommitFallback)
	r.RecordAbortAR(1, "a/x")
	if len(r.PerAR) != 2 {
		t.Fatalf("%d AR buckets, want 2", len(r.PerAR))
	}
	x := r.PerAR[1]
	if x.Name != "a/x" || x.Commits != 2 || x.Aborts != 1 ||
		x.CommitsByMode[CommitSCL] != 1 || x.CommitsByMode[CommitSpeculative] != 1 {
		t.Fatalf("AR bucket %+v", *x)
	}
	if r.PerAR[2].CommitsByMode[CommitFallback] != 1 {
		t.Fatal("fallback commit not recorded per AR")
	}
}
