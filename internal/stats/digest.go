package stats

import (
	"fmt"
	"sort"
	"strings"
)

// DigestSchemaVersion identifies the semantics behind Digest(): the set of
// digest-affecting Run fields and the simulator behaviour that fills them.
// Bump it on any change that alters the statistics a given RunParams
// produces — a new Run field, a changed metric definition, a simulator
// rewrite that is *not* bit-identical. The content-addressed run cache
// (internal/runstore) salts every cache key with this version, so bumping it
// orphans all previously cached results instead of replaying stale ones.
const DigestSchemaVersion = 1

// Digest renders every field of the run deterministically: identical runs
// produce identical strings, regardless of map iteration order or pointer
// identity. The machine-level determinism regression test hashes it, and
// perf work on the engine compares digests across rewrites to prove the
// simulation is bit-identical.
func (r *Run) Digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d commits=%d byMode=%v byRetries=%v", r.Cycles, r.Commits, r.CommitsByMode, r.CommitsByRetries)
	fmt.Fprintf(&b, " aborts=%d byBucket=%v", r.Aborts, r.AbortsByBucket)
	fmt.Fprintf(&b, " instr=%d abortedInstr=%d", r.Instructions, r.AbortedInstructions)
	fmt.Fprintf(&b, " discCycles=%d discRuns=%d", r.DiscoveryCycles, r.DiscoveryRuns)
	fmt.Fprintf(&b, " linesLocked=%d lockRetries=%d scl=%d nscl=%d crt=%d", r.LinesLocked, r.LockRetries, r.SCLAttempts, r.NSCLAttempts, r.CRTInsertions)
	fmt.Fprintf(&b, " l1=%d pairs=%d/%d fallbackAcq=%d powerClaims=%d", r.L1Accesses, r.ImmutableSmallPairs, r.RetryPairs, r.FallbackAcquisitions, r.PowerClaims)
	fmt.Fprintf(&b, " lat=%v", r.LatencyHist)
	ids := make([]int, 0, len(r.PerAR))
	for id := range r.PerAR {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := r.PerAR[id]
		fmt.Fprintf(&b, " ar%d={%s commits=%d byMode=%v aborts=%d}", id, s.Name, s.Commits, s.CommitsByMode, s.Aborts)
	}
	return b.String()
}
