// Package stats collects the per-run metrics the paper reports — commits by
// mode and by retry count (Figures 12 and 13), aborts by type (Figures 9 and
// 11), discovery overhead (Figure 8), footprint mutability samples
// (Figure 1) — and the event-counting energy model that substitutes for
// McPAT (Figure 10).
package stats

import (
	"repro/internal/htm"
	"repro/internal/sim"
)

// CommitMode says in which execution mode an AR finally committed
// (Figure 12).
type CommitMode int

const (
	CommitSpeculative CommitMode = iota
	CommitSCL
	CommitNSCL
	CommitFallback
	NumCommitModes
)

func (m CommitMode) String() string {
	switch m {
	case CommitSpeculative:
		return "speculative"
	case CommitSCL:
		return "S-CL"
	case CommitNSCL:
		return "NS-CL"
	case CommitFallback:
		return "fallback"
	}
	return "unknown"
}

// MaxRetryTrack is the deepest retry count tracked individually; deeper
// commits land in the last bucket. The paper notes some applications exceed
// the nominal limit of 10 because fallback-type aborts do not count.
const MaxRetryTrack = 16

// Run accumulates every metric of one simulation run. A single goroutine
// (the simulation) writes it; no locking.
type Run struct {
	// Cycles is the region-of-interest execution time.
	Cycles sim.Tick

	// Commits is the number of committed AR invocations.
	Commits uint64
	// CommitsByMode buckets commits per execution mode (Figure 12).
	CommitsByMode [NumCommitModes]uint64
	// CommitsByRetries[r] counts commits that needed exactly r
	// conflict-retries, r capped at MaxRetryTrack; fallback commits are
	// *not* included here (they are CommitsByMode[CommitFallback]).
	CommitsByRetries [MaxRetryTrack + 1]uint64

	// Aborts counts every aborted attempt; AbortsByBucket groups them as in
	// Figure 11.
	Aborts         uint64
	AbortsByBucket [htm.NumBuckets]uint64

	// Instructions counts retired instructions on committed paths;
	// AbortedInstructions counts work that was thrown away (aborted
	// attempts), which drives the dynamic-energy gap between
	// configurations.
	Instructions        uint64
	AbortedInstructions uint64

	// DiscoveryCycles is time spent running in failed-mode discovery past
	// the conflict point (the Figure 8 overhead series); DiscoveryRuns
	// counts how many attempts entered failed mode.
	DiscoveryCycles sim.Tick
	DiscoveryRuns   uint64

	// Lock-walk activity of the CL modes.
	LinesLocked   uint64
	LockRetries   uint64
	SCLAttempts   uint64
	NSCLAttempts  uint64
	CRTInsertions uint64

	// Memory-system event counters (the energy model inputs; the coherence
	// directory's own Stats are merged in by the harness).
	L1Accesses uint64

	// Figure 1 instrumentation: of the AR invocations that aborted their
	// first attempt and retried, how many had a footprint of at most 32
	// lines that was identical on the retry.
	RetryPairs          uint64
	ImmutableSmallPairs uint64

	// FallbackAcquisitions counts write acquisitions of the global lock.
	FallbackAcquisitions uint64
	// PowerClaims counts PowerTM token grants.
	PowerClaims uint64

	// Retry-policy counters (internal/policy). Deliberately excluded from
	// Digest(): the default policy reproduces the legacy digests
	// bit-identically, and non-default policies are keyed into the runstore
	// cache by RunSpec, so digest-keying them would be redundant.
	//
	// PolicyOverrides counts decisions where the policy overrode the §4.3
	// mechanism proposal (always a serialization to fallback).
	PolicyOverrides uint64
	// PolicyBackoffTicks is the total backoff delay the policy inserted
	// between attempts (excluding the fixed abort penalty).
	PolicyBackoffTicks uint64
	// PolicyNonSpecEntries counts attempt-0 static NS-CL entries taken on
	// policy preference (PreferNonSpec) rather than the StaticLocking
	// config.
	PolicyNonSpecEntries uint64

	// PerAR breaks commits and aborts down by atomic region (keyed by the
	// AR's program id), the granularity at which the paper reasons in
	// Table 1 and Figure 12. Lazily allocated.
	PerAR map[int]*ARStats

	// LatencyHist is a log2-bucketed histogram of per-invocation latency
	// (first attempt start to commit): bucket i counts latencies in
	// [2^i, 2^(i+1)). Tail latency is where retries and fallback
	// serialisation hurt, which aggregate execution time can hide.
	LatencyHist [LatencyBuckets]uint64
}

// LatencyBuckets bounds the log2 latency histogram (2^40 cycles ≫ any run).
const LatencyBuckets = 40

// RecordLatency files one invocation's start-to-commit latency.
func (r *Run) RecordLatency(lat sim.Tick) {
	b := 0
	for v := lat; v > 1 && b < LatencyBuckets-1; v >>= 1 {
		b++
	}
	r.LatencyHist[b]++
}

// LatencyPercentile returns an upper bound on the p-th percentile latency
// (p in [0,1]) from the histogram: the top of the bucket holding that rank.
func (r *Run) LatencyPercentile(p float64) sim.Tick {
	var total uint64
	for _, n := range r.LatencyHist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range r.LatencyHist {
		seen += n
		if seen > rank {
			return 1 << uint(i+1)
		}
	}
	return 1 << LatencyBuckets
}

// ARStats is the per-atomic-region slice of a run's statistics.
type ARStats struct {
	Name          string
	Commits       uint64
	CommitsByMode [NumCommitModes]uint64
	Aborts        uint64
}

// arStats returns (allocating if needed) the per-AR bucket.
func (r *Run) arStats(arID int, arName string) *ARStats {
	if r.PerAR == nil {
		r.PerAR = make(map[int]*ARStats)
	}
	s, ok := r.PerAR[arID]
	if !ok {
		s = &ARStats{Name: arName}
		r.PerAR[arID] = s
	}
	return s
}

// RecordCommit tallies a committed invocation.
func (r *Run) RecordCommit(mode CommitMode, conflictRetries int) {
	r.Commits++
	r.CommitsByMode[mode]++
	if mode != CommitFallback {
		if conflictRetries > MaxRetryTrack {
			conflictRetries = MaxRetryTrack
		}
		r.CommitsByRetries[conflictRetries]++
	}
}

// RecordCommitAR adds the per-AR view of a commit.
func (r *Run) RecordCommitAR(arID int, arName string, mode CommitMode) {
	s := r.arStats(arID, arName)
	s.Commits++
	s.CommitsByMode[mode]++
}

// RecordAbort tallies one aborted attempt.
func (r *Run) RecordAbort(reason htm.AbortReason) {
	r.Aborts++
	r.AbortsByBucket[htm.BucketOf(reason)]++
}

// RecordAbortAR adds the per-AR view of an abort.
func (r *Run) RecordAbortAR(arID int, arName string) {
	r.arStats(arID, arName).Aborts++
}

// AbortsPerCommit is the Figure 9 metric.
func (r *Run) AbortsPerCommit() float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(r.Commits)
}

// RetryingCommits is the number of commits that needed at least one retry,
// plus all fallback commits: the Figure 13 denominator.
func (r *Run) RetryingCommits() uint64 {
	n := r.CommitsByMode[CommitFallback]
	for i := 1; i <= MaxRetryTrack; i++ {
		n += r.CommitsByRetries[i]
	}
	return n
}

// FirstRetryShare is the fraction of retrying commits that succeeded on the
// first retry (Figure 13's headline number).
func (r *Run) FirstRetryShare() float64 {
	d := r.RetryingCommits()
	if d == 0 {
		return 0
	}
	return float64(r.CommitsByRetries[1]) / float64(d)
}

// FallbackShare is the fraction of retrying commits that ended in the
// fallback path.
func (r *Run) FallbackShare() float64 {
	d := r.RetryingCommits()
	if d == 0 {
		return 0
	}
	return float64(r.CommitsByMode[CommitFallback]) / float64(d)
}

// DiscoveryOverhead is discovery-cycles per core-cycle of execution, the
// shaded series of Figure 8.
func (r *Run) DiscoveryOverhead(cores int) float64 {
	if r.Cycles == 0 || cores == 0 {
		return 0
	}
	return float64(r.DiscoveryCycles) / (float64(r.Cycles) * float64(cores))
}

// Fig1Ratio is the Figure 1 metric: the fraction of first-retry pairs whose
// footprint was small and unchanged.
func (r *Run) Fig1Ratio() float64 {
	if r.RetryPairs == 0 {
		return 0
	}
	return float64(r.ImmutableSmallPairs) / float64(r.RetryPairs)
}
