package htm

import (
	"testing"

	"repro/internal/mem"
)

func TestAbortBuckets(t *testing.T) {
	cases := map[AbortReason]Bucket{
		AbortMemoryConflict:   BucketMemoryConflict,
		AbortExplicitFallback: BucketExplicitFallback,
		AbortOtherFallback:    BucketOtherFallback,
		AbortCapacity:         BucketOthers,
		AbortExplicit:         BucketOthers,
		AbortDeviation:        BucketOthers,
	}
	for r, want := range cases {
		if got := BucketOf(r); got != want {
			t.Errorf("BucketOf(%v) = %v, want %v", r, got, want)
		}
	}
}

// TestRetryCounting: fallback-related aborts do not push an AR toward the
// fallback path (§7: "certain types of aborts do not increase the counter").
func TestRetryCounting(t *testing.T) {
	if CountsTowardRetryLimit(AbortExplicitFallback) || CountsTowardRetryLimit(AbortOtherFallback) {
		t.Fatal("fallback-type aborts must not count toward the retry limit")
	}
	for _, r := range []AbortReason{AbortMemoryConflict, AbortCapacity, AbortExplicit, AbortDeviation} {
		if !CountsTowardRetryLimit(r) {
			t.Errorf("%v should count toward the retry limit", r)
		}
	}
}

func TestFallbackLockReaders(t *testing.T) {
	f := NewFallbackLock(mem.LineAddr(0x10))
	if !f.Free() {
		t.Fatal("new lock not free")
	}
	if !f.TryAcquireRead(1) || !f.TryAcquireRead(2) {
		t.Fatal("concurrent readers refused")
	}
	// Read mode (NS-CL/S-CL) does not block speculative starts: Free()
	// asks "may a transaction begin", and only fallback excludes that.
	if !f.Free() {
		t.Fatal("read mode must not block speculative starts")
	}
	f.ReleaseRead(1)
	f.ReleaseRead(2)
	if !f.Free() {
		t.Fatal("lock not free after readers left")
	}
}

func TestFallbackWriterExcludesReaders(t *testing.T) {
	f := NewFallbackLock(0x10)
	f.TryAcquireRead(1)
	f.AnnounceWriter(0)
	// Announced writer blocks new readers (no writer starvation).
	if f.TryAcquireRead(2) {
		t.Fatal("new reader admitted while a writer waits")
	}
	if f.TryAcquireWrite(0) {
		t.Fatal("writer acquired while a reader holds")
	}
	f.ReleaseRead(1)
	if !f.TryAcquireWrite(0) {
		t.Fatal("writer refused after readers drained")
	}
	if f.Free() || !f.WriterHeld() || f.Writer() != 0 {
		t.Fatal("writer state wrong")
	}
	if f.TryAcquireRead(3) || tryWrite(f, 1) {
		t.Fatal("lock not exclusive")
	}
	f.ReleaseWrite(0)
	if !f.Free() {
		t.Fatal("not free after writer release")
	}
}

// tryWrite wraps announce+try+withdraw for the exclusivity check above.
func tryWrite(f *FallbackLock, core int) bool {
	f.AnnounceWriter(core)
	ok := f.TryAcquireWrite(core)
	if !ok {
		f.WithdrawWriter(core)
	}
	return ok
}

func TestFallbackReleaseWithoutHoldPanics(t *testing.T) {
	f := NewFallbackLock(0x10)
	for _, fn := range []func(){
		func() { f.ReleaseRead(1) },
		func() { f.ReleaseWrite(1) },
		func() { f.TryAcquireWrite(1) }, // without announce
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid lock transition did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPowerTokenSingleHolder(t *testing.T) {
	p := NewPowerToken()
	if p.Held() {
		t.Fatal("fresh token held")
	}
	if !p.TryClaim(3) {
		t.Fatal("claim of free token failed")
	}
	if !p.TryClaim(3) {
		t.Fatal("re-claim by holder failed")
	}
	if p.TryClaim(4) {
		t.Fatal("second core claimed a held token")
	}
	if p.Grants != 1 || p.Denied != 1 {
		t.Fatalf("grants=%d denied=%d, want 1/1", p.Grants, p.Denied)
	}
	p.Release(3)
	if p.Held() {
		t.Fatal("token held after release")
	}
	if !p.TryClaim(4) {
		t.Fatal("claim after release failed")
	}
}

func TestPowerTokenReleaseByNonHolderPanics(t *testing.T) {
	p := NewPowerToken()
	p.TryClaim(1)
	defer func() {
		if recover() == nil {
			t.Error("release by non-holder did not panic")
		}
	}()
	p.Release(2)
}

func TestPowerTokenReleaseIfHeld(t *testing.T) {
	p := NewPowerToken()
	p.ReleaseIfHeld(5) // no-op, no panic
	p.TryClaim(5)
	p.ReleaseIfHeld(4) // not the holder: no-op
	if !p.Held() {
		t.Fatal("wrong core released the token")
	}
	p.ReleaseIfHeld(5)
	if p.Held() {
		t.Fatal("token still held")
	}
}
