package htm

import "fmt"

// PowerToken implements PowerTM's single power-mode transaction (§5.2 and
// [9]): after its first abort, a transaction may claim the token; while it
// holds it, conflicts resolve in its favour (remote holders yield to its
// requests, and its holdings NACK remote requesters). Only one transaction
// system-wide can be in power mode.
type PowerToken struct {
	holder int // core in power mode, or -1
	// Grants counts successful claims; Denied counts claims that found the
	// token taken (both feed the stats report).
	Grants uint64
	Denied uint64
}

// NewPowerToken returns a free token.
func NewPowerToken() *PowerToken { return &PowerToken{holder: -1} }

// Holder returns the core in power mode, or -1.
func (p *PowerToken) Holder() int { return p.holder }

// Held reports whether any core is in power mode.
func (p *PowerToken) Held() bool { return p.holder >= 0 }

// TryClaim gives the token to core if it is free.
func (p *PowerToken) TryClaim(core int) bool {
	if p.holder >= 0 {
		if p.holder != core {
			p.Denied++
		}
		return p.holder == core
	}
	p.holder = core
	p.Grants++
	return true
}

// Release frees the token; core must hold it. Released at commit and when
// entering the fallback path.
func (p *PowerToken) Release(core int) {
	if p.holder != core {
		panic(fmt.Sprintf("htm: core %d releasing power token held by %d", core, p.holder))
	}
	p.holder = -1
}

// ReleaseIfHeld frees the token when core holds it; no-op otherwise.
func (p *PowerToken) ReleaseIfHeld(core int) {
	if p.holder == core {
		p.holder = -1
	}
}
