package htm

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
)

// FallbackLock is the global lock guarding non-speculative fallback
// execution. Its functional state lives in this struct; its *coherence*
// state is the simulated cacheline Line: speculative transactions read
// (subscribe to) the line at XBegin, so a writer's GetX aborts them through
// the ordinary invalidation path — the mechanism §2.1 describes.
//
// The lock is a readers-writer lock: NS-CL and S-CL executions take it in
// read mode (§4.3, "ensure that no other AR is in fallback mode by acquiring
// a read lock"); fallback execution takes it in write mode. A waiting writer
// blocks new readers so the fallback path cannot starve.
type FallbackLock struct {
	Line mem.LineAddr

	writer         int // core holding write mode, or -1
	readers        coherence.CoreSet
	writersWaiting coherence.CoreSet
}

// NewFallbackLock builds an unlocked fallback lock backed by line.
func NewFallbackLock(line mem.LineAddr) *FallbackLock {
	return &FallbackLock{Line: line, writer: -1}
}

// Free reports whether a speculative transaction may start: no writer holds
// the lock and none is waiting. CL-mode readers do not block speculation —
// the read lock exists only to exclude fallback execution (§4.3).
func (f *FallbackLock) Free() bool {
	return f.writer < 0 && f.writersWaiting.Empty()
}

// WriterHeld reports whether some core holds write (fallback) mode.
func (f *FallbackLock) WriterHeld() bool { return f.writer >= 0 }

// Writer returns the core in write mode, or -1.
func (f *FallbackLock) Writer() int { return f.writer }

// Readers returns the set of cores in read mode.
func (f *FallbackLock) Readers() coherence.CoreSet { return f.readers }

// TryAcquireRead takes read mode for core if no writer holds or awaits the
// lock. NS-CL/S-CL spin on this.
func (f *FallbackLock) TryAcquireRead(core int) bool {
	if f.writer >= 0 || !f.writersWaiting.Empty() {
		return false
	}
	f.readers = f.readers.Add(core)
	return true
}

// ReleaseRead drops core's read mode.
func (f *FallbackLock) ReleaseRead(core int) {
	if !f.readers.Has(core) {
		panic(fmt.Sprintf("htm: core %d releasing fallback read lock it does not hold", core))
	}
	f.readers = f.readers.Remove(core)
}

// AnnounceWriter registers core as wanting write mode, blocking new readers.
func (f *FallbackLock) AnnounceWriter(core int) {
	f.writersWaiting = f.writersWaiting.Add(core)
}

// TryAcquireWrite claims write mode for core once all readers have drained
// and no other writer holds the lock. The core must have announced first.
func (f *FallbackLock) TryAcquireWrite(core int) bool {
	if !f.writersWaiting.Has(core) {
		panic(fmt.Sprintf("htm: core %d acquiring fallback write lock without announcing", core))
	}
	if f.writer >= 0 || !f.readers.Empty() {
		return false
	}
	f.writer = core
	f.writersWaiting = f.writersWaiting.Remove(core)
	return true
}

// ReleaseWrite drops write mode.
func (f *FallbackLock) ReleaseWrite(core int) {
	if f.writer != core {
		panic(fmt.Sprintf("htm: core %d releasing fallback write lock held by %d", core, f.writer))
	}
	f.writer = -1
}

// WithdrawWriter cancels a pending write claim (not used on the normal
// path; exists so tests can exercise writer back-off).
func (f *FallbackLock) WithdrawWriter(core int) {
	f.writersWaiting = f.writersWaiting.Remove(core)
}
