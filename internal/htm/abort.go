// Package htm provides the baseline hardware-transactional-memory machinery
// of the paper's evaluation: the abort taxonomy of Figure 11, the global
// fallback lock protocol of §2.1, and the PowerTM power token of §5.2. The
// per-core execution engine lives in internal/cpu; this package holds the
// shared, policy-level pieces.
package htm

// AbortReason records why an AR attempt failed. The reasons map onto the
// four buckets of Figure 11.
type AbortReason int

const (
	// AbortNone: no abort (sentinel).
	AbortNone AbortReason = iota
	// AbortMemoryConflict: a data conflict, detected either by an incoming
	// invalidation hitting the read/write set (requester-wins) or by our
	// own request being NACKed by a prioritised holder.
	AbortMemoryConflict
	// AbortExplicitFallback: the thread attempted to start a speculative AR
	// but found the fallback lock taken.
	AbortExplicitFallback
	// AbortOtherFallback: the thread was executing speculatively when
	// another thread took the fallback lock (invalidation of the
	// subscribed lock line).
	AbortOtherFallback
	// AbortCapacity: speculative resources exhausted (L1 set conflict
	// evicting a tracked line, or store-queue overflow).
	AbortCapacity
	// AbortExplicit: the program executed XAbort.
	AbortExplicit
	// AbortDeviation: an S-CL or NS-CL re-execution touched a line outside
	// the discovery-learned set.
	AbortDeviation
	// AbortSpurious: an injected environmental abort (interrupt, TLB
	// shootdown) landing inside the speculative window; produced only by the
	// internal/fault injector. Counts toward the retry limit like any
	// non-fallback abort.
	AbortSpurious
)

func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortMemoryConflict:
		return "memory-conflict"
	case AbortExplicitFallback:
		return "explicit-fallback"
	case AbortOtherFallback:
		return "other-fallback"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	case AbortDeviation:
		return "deviation"
	case AbortSpurious:
		return "spurious"
	}
	return "unknown"
}

// Bucket is the Figure 11 grouping.
type Bucket int

const (
	BucketMemoryConflict Bucket = iota
	BucketExplicitFallback
	BucketOtherFallback
	BucketOthers
	NumBuckets
)

func (b Bucket) String() string {
	switch b {
	case BucketMemoryConflict:
		return "memory-conflict"
	case BucketExplicitFallback:
		return "explicit-fallback"
	case BucketOtherFallback:
		return "other-fallback"
	case BucketOthers:
		return "others"
	}
	return "unknown"
}

// BucketOf maps an abort reason to its Figure 11 bucket.
func BucketOf(r AbortReason) Bucket {
	switch r {
	case AbortMemoryConflict:
		return BucketMemoryConflict
	case AbortExplicitFallback:
		return BucketExplicitFallback
	case AbortOtherFallback:
		return BucketOtherFallback
	default:
		return BucketOthers
	}
}

// CountsTowardRetryLimit reports whether an abort of this kind increments
// the counter that eventually sends the AR to the fallback path. Fallback-
// related aborts do not (§7, "certain types of aborts do not increase the
// counter").
func CountsTowardRetryLimit(r AbortReason) bool {
	switch r {
	case AbortExplicitFallback, AbortOtherFallback:
		return false
	}
	return true
}
