package policy

import (
	clear "repro/internal/core"
	"repro/internal/sim"
)

// ewmaPolicy is the consequence-style adaptive speculator: per AR, an
// exponentially-weighted moving average of speculative attempt success,
// seeded optimistic. While an AR's rate stays above the floor it behaves
// like the default policy. Once contention drags the rate below the floor
// the policy stops speculating on that AR: at invocation start it prefers a
// statically-computed NS-CL entry (skipping speculation entirely when the
// footprint is evaluable a priori), and on abort it overrides a plain
// speculative proposal with fallback rather than burn more doomed attempts.
// Cacheline-locked proposals are always honoured — they carry a learned
// footprint and make progress by locking.
//
// State is per-core and per-AR: each core learns from its own attempts
// only, so the policy stays deterministic without cross-core coupling, at
// the cost of each core paying its own learning transient.
type ewmaPolicy struct {
	env   Env
	alpha float64
	floor float64
	rate  map[int]float64 // progID -> EWMA of speculative success; absent = optimistic 1.0
}

func (p *ewmaPolicy) rateOf(progID int) float64 {
	if r, ok := p.rate[progID]; ok {
		return r
	}
	return 1.0
}

func (p *ewmaPolicy) Decide(ctx *Context) Decision {
	d := Decision{Mode: ctx.Proposed}
	if ctx.Proposed == clear.RetrySpeculative && p.rateOf(ctx.ProgID) < p.floor {
		// The AR has been aborting speculatively often enough that another
		// speculative attempt is expected to waste work: serialize now.
		d.Mode = clear.RetryFallback
		return d
	}
	if p.env.BackoffBase == 0 {
		return d
	}
	if d.Mode == clear.RetrySCL || d.Mode == clear.RetryNSCL {
		return d
	}
	shift := ctx.ConflictRetries
	if shift > 6 {
		shift = 6
	}
	window := int(p.env.BackoffBase) << uint(shift)
	d.Backoff = sim.Tick(ctx.Rand(window))
	return d
}

func (p *ewmaPolicy) BudgetExhausted(conflictRetries int) bool {
	return conflictRetries > p.env.RetryLimit
}

func (p *ewmaPolicy) PreferNonSpec(progID int) bool {
	return p.rateOf(progID) < p.floor
}

func (p *ewmaPolicy) OnCommit(o Outcome) {
	if o.Mode != ExecSpeculative {
		return
	}
	p.rate[o.ProgID] = (1-p.alpha)*p.rateOf(o.ProgID) + p.alpha
}

func (p *ewmaPolicy) OnAbort(o Outcome) {
	if o.Mode != ExecSpeculative {
		return
	}
	p.rate[o.ProgID] = (1 - p.alpha) * p.rateOf(o.ProgID)
}
