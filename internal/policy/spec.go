// Package policy makes the §4.3 next-mode decision a pluggable scenario
// axis. The paper hard-wires its fallback policy — one speculative retry,
// then constrained execution — inside the abort path; this package lifts
// that decision behind a seed-deterministic interface so alternative
// schemes (bounded retry with deterministic backoff, EWMA-adaptive
// speculation) can be expressed, swept, and cached exactly like a machine
// configuration.
//
// Determinism contract: a policy is a pure function of (Spec, Env) plus the
// observation stream it has been fed. It may draw randomness only through
// Context.Rand (the core's own RNG, so the default policy reproduces the
// legacy draw sequence bit-for-bit) or from hashes of seed-derived values;
// it must never consult wall-clock time, global state, or map iteration
// order. Learning state is per-AR (keyed by program id) and per-core:
// cores do not share policy state, mirroring the per-core ERT/ALT/CRT
// tables of the hardware proposal.
package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind names a built-in policy family. The zero value is the paper-exact
// CLEAR policy, so a zero Spec selects today's behaviour everywhere.
type Kind int

const (
	// KindClear: the paper's §4.3 decision tree verbatim — accept every
	// mechanism proposal, randomized exponential backoff drawn from the
	// core RNG. Bit-identical to the pre-policy implementation.
	KindClear Kind = iota
	// KindRetry: fixed-N retry budget with deterministic FNV-jittered
	// exponential backoff (sapling-style bounded retry).
	KindRetry
	// KindEWMA: per-AR EWMA of speculative success; learns to skip
	// speculation (straight to NS-CL when the footprint is static,
	// fallback otherwise) once an AR's success rate falls below the floor.
	KindEWMA
)

// Default parameter values, applied by Parse so a Spec's Canonical form is
// fully resolved.
const (
	DefaultRetryN  = 4
	DefaultBackoff = "exp"
	DefaultAlpha   = 0.25
	DefaultFloor   = 0.1
)

// Spec is the parsed, normalized description of a policy: the value that
// travels through SystemConfig, RunParams, and (canonically rendered, with
// default-elision) the runstore cache key. The zero value is the default
// CLEAR policy.
type Spec struct {
	Kind Kind

	// Retry-family parameters.
	// N is the conflict-retry budget before fallback.
	N int
	// Backoff selects the jitter shape: "exp" or "none".
	Backoff string

	// EWMA-family parameters.
	// Alpha is the EWMA smoothing factor in (0, 1].
	Alpha float64
	// Floor is the success-rate threshold below which speculation stops.
	Floor float64
}

// IsDefault reports whether the spec selects the default CLEAR policy —
// the case RunSpec elides so every pre-policy cache key stays valid.
func (s Spec) IsDefault() bool { return s.Kind == KindClear }

// Name returns the policy family name.
func (s Spec) Name() string {
	switch s.Kind {
	case KindRetry:
		return "retry"
	case KindEWMA:
		return "ewma"
	default:
		return "clear"
	}
}

// Canonical renders the spec in its unique normalized form: family name,
// then every family parameter in sorted order with resolved values. Two
// specs describing the same policy render identically, which is what makes
// the rendering safe to embed in a content-addressed cache key.
func (s Spec) Canonical() string {
	switch s.Kind {
	case KindRetry:
		n, backoff := s.N, s.Backoff
		if n <= 0 {
			n = DefaultRetryN
		}
		if backoff == "" {
			backoff = DefaultBackoff
		}
		return fmt.Sprintf("retry:backoff=%s,n=%d", backoff, n)
	case KindEWMA:
		alpha, floor := s.Alpha, s.Floor
		if alpha == 0 {
			alpha = DefaultAlpha
		}
		if floor == 0 {
			floor = DefaultFloor
		}
		return fmt.Sprintf("ewma:alpha=%s,floor=%s",
			strconv.FormatFloat(alpha, 'g', -1, 64),
			strconv.FormatFloat(floor, 'g', -1, 64))
	default:
		return "clear"
	}
}

func (s Spec) String() string { return s.Canonical() }

// Grammar is the accepted -policy syntax, quoted by parse errors so a typo
// on any tool's command line names what would have been accepted.
const Grammar = `name[:key=value[,key=value...]] — one of "clear", "retry[:n=<int>,backoff=exp|none]", "ewma[:alpha=<0..1>,floor=<0..1>]"`

// Parse decodes a -policy argument ("clear", "retry:n=4,backoff=exp",
// "ewma:alpha=0.25,floor=0.1") into its normalized spec. The empty string
// selects the default policy.
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, nil
	}
	name, params, hasParams := strings.Cut(s, ":")
	kv, err := parseParams(params, hasParams)
	if err != nil {
		return Spec{}, fmt.Errorf("policy %q: %w (grammar: %s)", s, err, Grammar)
	}
	var spec Spec
	switch name {
	case "clear":
		spec = Spec{Kind: KindClear}
		if len(kv) > 0 {
			return Spec{}, fmt.Errorf("policy %q: the clear policy takes no parameters (grammar: %s)", s, Grammar)
		}
	case "retry":
		spec = Spec{Kind: KindRetry, N: DefaultRetryN, Backoff: DefaultBackoff}
		for k, v := range kv {
			switch k {
			case "n":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 || n > 1<<20 {
					return Spec{}, fmt.Errorf("policy %q: n=%q is not an integer in [1, 2^20] (grammar: %s)", s, v, Grammar)
				}
				spec.N = n
			case "backoff":
				if v != "exp" && v != "none" {
					return Spec{}, fmt.Errorf("policy %q: backoff=%q (want exp or none; grammar: %s)", s, v, Grammar)
				}
				spec.Backoff = v
			default:
				return Spec{}, fmt.Errorf("policy %q: unknown parameter %q for retry (want n, backoff; grammar: %s)", s, k, Grammar)
			}
		}
	case "ewma":
		spec = Spec{Kind: KindEWMA, Alpha: DefaultAlpha, Floor: DefaultFloor}
		for k, v := range kv {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("policy %q: %s=%q is not a number (grammar: %s)", s, k, v, Grammar)
			}
			switch k {
			case "alpha":
				if f <= 0 || f > 1 {
					return Spec{}, fmt.Errorf("policy %q: alpha=%q outside (0, 1] (grammar: %s)", s, v, Grammar)
				}
				spec.Alpha = f
			case "floor":
				if f <= 0 || f >= 1 {
					return Spec{}, fmt.Errorf("policy %q: floor=%q outside (0, 1) (grammar: %s)", s, v, Grammar)
				}
				spec.Floor = f
			default:
				return Spec{}, fmt.Errorf("policy %q: unknown parameter %q for ewma (want alpha, floor; grammar: %s)", s, k, Grammar)
			}
		}
	default:
		return Spec{}, fmt.Errorf("unknown policy %q (want clear, retry or ewma; grammar: %s)", name, Grammar)
	}
	return spec, nil
}

// ParseList decodes a policy list separated by semicolons or whitespace
// (commas belong to the per-policy parameter grammar). Duplicate canonical
// forms are rejected: a sweep axis with repeated points is a typo.
func ParseList(s string) ([]Spec, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ';' || r == ' ' || r == '\t' || r == '\n'
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty policy list (separate policies with semicolons, e.g. \"clear;retry:n=4;ewma\")")
	}
	specs := make([]Spec, 0, len(fields))
	seen := map[string]bool{}
	for _, f := range fields {
		spec, err := Parse(f)
		if err != nil {
			return nil, err
		}
		if seen[spec.Canonical()] {
			return nil, fmt.Errorf("policy list %q repeats %s", s, spec.Canonical())
		}
		seen[spec.Canonical()] = true
		specs = append(specs, spec)
	}
	return specs, nil
}

// parseParams splits "k=v,k=v" into a map, rejecting malformed or repeated
// keys. hasParams distinguishes "name:" (empty parameter list, an error)
// from a bare "name".
func parseParams(params string, hasParams bool) (map[string]string, error) {
	if !hasParams {
		return nil, nil
	}
	if params == "" {
		return nil, fmt.Errorf("empty parameter list after %q", ":")
	}
	kv := map[string]string{}
	for _, part := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("parameter %q is not key=value", part)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("parameter %q repeated", k)
		}
		kv[k] = v
	}
	return kv, nil
}

// Names lists the built-in policy family names, sorted (help text).
func Names() []string {
	out := []string{"clear", "ewma", "retry"}
	sort.Strings(out)
	return out
}
