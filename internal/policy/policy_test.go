package policy

import (
	"strings"
	"testing"

	clear "repro/internal/core"
	"repro/internal/sim"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "clear"},
		{"clear", "clear"},
		{" clear ", "clear"},
		{"retry", "retry:backoff=exp,n=4"},
		{"retry:n=8", "retry:backoff=exp,n=8"},
		{"retry:backoff=none,n=2", "retry:backoff=none,n=2"},
		{"retry:n=2,backoff=none", "retry:backoff=none,n=2"},
		{"ewma", "ewma:alpha=0.25,floor=0.1"},
		{"ewma:alpha=0.5", "ewma:alpha=0.5,floor=0.1"},
		{"ewma:floor=0.2,alpha=0.125", "ewma:alpha=0.125,floor=0.2"},
	}
	for _, tc := range cases {
		spec, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := spec.Canonical(); got != tc.want {
			t.Errorf("Parse(%q).Canonical() = %q, want %q", tc.in, got, tc.want)
		}
		// Canonical forms must re-parse to themselves.
		spec2, err := Parse(spec.Canonical())
		if err != nil {
			t.Fatalf("Parse(%q) (canonical round-trip): %v", spec.Canonical(), err)
		}
		if spec2.Canonical() != spec.Canonical() {
			t.Errorf("canonical %q re-parsed to %q", spec.Canonical(), spec2.Canonical())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nope",
		"clear:n=1",
		"retry:",
		"retry:n=0",
		"retry:n=x",
		"retry:backoff=linear",
		"retry:m=4",
		"retry:n=4,n=5",
		"ewma:alpha=0",
		"ewma:alpha=1.5",
		"ewma:floor=1",
		"ewma:beta=0.5",
		"retry:n",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		} else if !strings.Contains(err.Error(), "clear") {
			t.Errorf("Parse(%q) error %q does not quote the grammar", in, err)
		}
	}
}

func TestParseList(t *testing.T) {
	specs, err := ParseList("clear; retry:n=2,backoff=exp ewma")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Kind != KindClear || specs[1].Kind != KindRetry || specs[2].Kind != KindEWMA {
		t.Fatalf("ParseList: got %v", specs)
	}
	if specs[1].N != 2 {
		t.Errorf("retry n = %d, want 2", specs[1].N)
	}
	if _, err := ParseList("clear;clear"); err == nil {
		t.Error("duplicate policies accepted")
	}
	if _, err := ParseList("  "); err == nil {
		t.Error("empty list accepted")
	}
}

func TestDefaultElision(t *testing.T) {
	var zero Spec
	if !zero.IsDefault() {
		t.Error("zero Spec is not default")
	}
	if s, _ := Parse("clear"); !s.IsDefault() {
		t.Error(`Parse("clear") is not default`)
	}
	if s, _ := Parse("retry"); s.IsDefault() {
		t.Error(`Parse("retry") claims default`)
	}
}

// TestClearBackoffMatchesLegacy pins the default policy's draw discipline to
// the legacy retryBackoff formula: same window arithmetic, same skip rules,
// driven by the same RNG. This is the bit-identity contract in miniature.
func TestClearBackoffMatchesLegacy(t *testing.T) {
	const base = sim.Tick(64)
	env := Env{Seed: 7, Core: 3, RetryLimit: 4, BackoffBase: base}
	p := New(Spec{}, env)

	legacy := func(rng *sim.RNG, mode clear.RetryMode, retries int) sim.Tick {
		if mode == clear.RetrySCL || mode == clear.RetryNSCL {
			return 0
		}
		shift := retries
		if shift > 6 {
			shift = 6
		}
		return sim.Tick(rng.Intn(int(base) << uint(shift)))
	}

	rngA := sim.NewRNG(99)
	rngB := sim.NewRNG(99)
	ctx := Context{Rand: rngA.Intn}
	modes := []clear.RetryMode{
		clear.RetrySpeculative, clear.RetryFallback, clear.RetrySCL,
		clear.RetryNSCL, clear.RetrySpeculative, clear.RetryFallback,
	}
	for retries := 0; retries < 10; retries++ {
		for _, m := range modes {
			ctx.Proposed = m
			ctx.ConflictRetries = retries
			d := p.Decide(&ctx)
			if d.Mode != m {
				t.Fatalf("clear policy changed mode %v -> %v", m, d.Mode)
			}
			if want := legacy(rngB, m, retries); d.Backoff != want {
				t.Fatalf("mode %v retries %d: backoff %d, want %d", m, retries, d.Backoff, want)
			}
		}
	}

	// BackoffBase == 0 disables the draw entirely.
	p0 := New(Spec{}, Env{RetryLimit: 4})
	ctx0 := Context{Proposed: clear.RetrySpeculative, Rand: func(int) int {
		t.Fatal("clear policy drew with BackoffBase=0")
		return 0
	}}
	if d := p0.Decide(&ctx0); d.Backoff != 0 {
		t.Fatalf("backoff %d with BackoffBase=0", d.Backoff)
	}
}

func TestRetryPolicyDeterministicBackoff(t *testing.T) {
	env := Env{Seed: 42, Core: 1, RetryLimit: 4, BackoffBase: 64}
	p := New(Spec{Kind: KindRetry, N: 6, Backoff: "exp"}, env)

	noRand := func(int) int { t.Fatal("retry policy consulted the core RNG"); return 0 }
	ctx := Context{ProgID: 9, ConflictRetries: 2, Proposed: clear.RetrySpeculative, Rand: noRand}
	d1 := p.Decide(&ctx)
	d2 := p.Decide(&ctx)
	if d1 != d2 {
		t.Fatalf("same context decided differently: %v vs %v", d1, d2)
	}
	if d1.Backoff >= 64<<2 {
		t.Fatalf("backoff %d outside the retry-2 window %d", d1.Backoff, 64<<2)
	}
	// Budget: n=6 allows conflictRetries up to 6.
	if p.BudgetExhausted(6) {
		t.Error("budget exhausted at n")
	}
	if !p.BudgetExhausted(7) {
		t.Error("budget not exhausted past n")
	}
	// CL proposals are honoured with no delay.
	ctx.Proposed = clear.RetrySCL
	if d := p.Decide(&ctx); d.Mode != clear.RetrySCL || d.Backoff != 0 {
		t.Fatalf("SCL proposal decided %v", d)
	}
	// backoff=none zeroes the delay.
	pn := New(Spec{Kind: KindRetry, N: 6, Backoff: "none"}, env)
	ctx.Proposed = clear.RetrySpeculative
	if d := pn.Decide(&ctx); d.Backoff != 0 {
		t.Fatalf("backoff=none gave %d", d.Backoff)
	}
}

func TestEWMALearnsToStopSpeculating(t *testing.T) {
	env := Env{Seed: 1, Core: 0, RetryLimit: 4, BackoffBase: 0}
	p := New(Spec{Kind: KindEWMA, Alpha: 0.5, Floor: 0.2}, env)
	const prog = 3

	if p.PreferNonSpec(prog) {
		t.Fatal("fresh AR already below floor (should start optimistic)")
	}
	ctx := Context{ProgID: prog, Proposed: clear.RetrySpeculative}
	if d := p.Decide(&ctx); d.Mode != clear.RetrySpeculative {
		t.Fatalf("optimistic AR decided %v", d.Mode)
	}

	// Three straight speculative aborts at alpha=0.5: 1.0 -> 0.5 -> 0.25 -> 0.125 < 0.2.
	for i := 0; i < 3; i++ {
		p.OnAbort(Outcome{ProgID: prog, Mode: ExecSpeculative})
	}
	if !p.PreferNonSpec(prog) {
		t.Fatal("AR not below floor after three aborts")
	}
	if d := p.Decide(&ctx); d.Mode != clear.RetryFallback {
		t.Fatalf("contended AR decided %v, want fallback", d.Mode)
	}
	// CL proposals are still honoured below the floor.
	ctx.Proposed = clear.RetryNSCL
	if d := p.Decide(&ctx); d.Mode != clear.RetryNSCL {
		t.Fatalf("NS-CL proposal overridden to %v", d.Mode)
	}
	// Other ARs are unaffected.
	if p.PreferNonSpec(prog + 1) {
		t.Error("unrelated AR inherited the learned rate")
	}
	// Commits recover the rate: 0.125 -> 0.5625 > 0.2.
	p.OnCommit(Outcome{ProgID: prog, Mode: ExecSpeculative})
	if p.PreferNonSpec(prog) {
		t.Error("AR still below floor after a speculative commit")
	}
	// Non-speculative outcomes are not learning signal.
	p.OnAbort(Outcome{ProgID: prog, Mode: ExecNSCL})
	p.OnAbort(Outcome{ProgID: prog, Mode: ExecFallback})
	if p.PreferNonSpec(prog) {
		t.Error("CL/fallback outcomes moved the speculative EWMA")
	}
}

func TestOverrideAllowed(t *testing.T) {
	modes := []clear.RetryMode{clear.RetrySpeculative, clear.RetrySCL, clear.RetryNSCL, clear.RetryFallback}
	for _, proposed := range modes {
		for _, decided := range modes {
			want := decided == proposed || decided == clear.RetryFallback
			if got := OverrideAllowed(proposed, decided); got != want {
				t.Errorf("OverrideAllowed(%v, %v) = %v, want %v", proposed, decided, got, want)
			}
		}
	}
}
