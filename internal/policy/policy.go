package policy

import (
	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/sim"
)

// Context is the attempt context handed to Decide after an aborted attempt:
// everything the §4.3 mechanism knows at the decision point. The cpu layer
// owns one Context per core and reuses it, so Decide must not retain the
// pointer past the call.
type Context struct {
	// Core and ProgID identify the deciding core and the AR it is running.
	Core   int
	ProgID int
	// Attempt is the zero-based attempt index that just aborted;
	// ConflictRetries counts the conflict-type aborts so far (already
	// incremented for the abort being decided).
	Attempt         int
	ConflictRetries int
	// Reason is why the attempt aborted.
	Reason htm.AbortReason
	// Proposed is the §4.3 decision tree's proposal for the next attempt —
	// the mode the hardware mechanism would take. The mechanism (discovery,
	// assessment, ERT/ALT/CRT updates) has already run; a policy chooses
	// whether to honour the proposal or serialize instead.
	Proposed clear.RetryMode
	// Assessed and Assessment carry the discovery assessment when the
	// aborting attempt completed failed-mode discovery.
	Assessed   bool
	Assessment clear.Assessment
	// Rand draws a uniform int in [0, n) from the deciding core's own RNG —
	// the only legal source of per-decision randomness. Policies that do
	// not draw must not call it (the draw sequence is part of the
	// deterministic digest contract).
	Rand func(n int) int
}

// Decision is a policy's answer: the next attempt's mode and the backoff
// delay to insert before it (on top of the fixed abort penalty).
//
// Legal decisions are constrained by the machine's invariants, enforced by
// the cpu layer: a policy may return the proposal unchanged or override it
// to RetryFallback (serialization is always safe). It must never weaken a
// cacheline-locked proposal to a plain speculative retry — that is exactly
// the single-retry-bound violation the oracle exists to catch — and it
// cannot invent a CL mode the mechanism did not propose, because no learned
// footprint would back the lock walk.
type Decision struct {
	Mode    clear.RetryMode
	Backoff sim.Tick
}

// ExecMode classifies a finished attempt for the observation hooks.
type ExecMode uint8

const (
	// ExecSpeculative covers plain speculative attempts and failed-mode
	// discovery continuations (both are speculative executions).
	ExecSpeculative ExecMode = iota
	ExecSCL
	ExecNSCL
	ExecFallback
)

func (m ExecMode) String() string {
	switch m {
	case ExecSCL:
		return "S-CL"
	case ExecNSCL:
		return "NS-CL"
	case ExecFallback:
		return "fallback"
	default:
		return "speculative"
	}
}

// Outcome is one observation fed to a learning policy: an attempt of ProgID
// finished (committed or aborted) in Mode after ConflictRetries
// conflict-counted retries.
type Outcome struct {
	ProgID          int
	Mode            ExecMode
	ConflictRetries int
}

// Env is the per-core construction environment: the run seed, the deciding
// core's id, and the config knobs the default policy needs to reproduce the
// legacy behaviour exactly.
type Env struct {
	Seed        uint64
	Core        int
	RetryLimit  int
	BackoffBase sim.Tick
}

// Policy owns the next-mode decision for one core. Implementations must be
// deterministic (see the package comment) and allocation-free on the
// decision path — Decide runs on every abort of the simulation hot loop.
type Policy interface {
	// Decide picks the next attempt's mode and backoff after an abort.
	Decide(ctx *Context) Decision
	// BudgetExhausted reports whether conflictRetries has exhausted the
	// retry budget; the next attempt then enters the fallback path
	// regardless of the last decision.
	BudgetExhausted(conflictRetries int) bool
	// PreferNonSpec is the attempt-0 hint: skip speculation entirely and
	// try a statically-computed NS-CL footprint (possible only for ARs
	// whose footprint is evaluable a priori; the cpu layer falls back to
	// speculation when it is not).
	PreferNonSpec(progID int) bool
	// OnCommit and OnAbort observe finished attempts, the learning signal
	// for adaptive policies. Called on the simulation hot path; must not
	// allocate per call in steady state.
	OnCommit(o Outcome)
	OnAbort(o Outcome)
}

// New constructs the policy selected by spec for one core. Constructing per
// core keeps learning state core-local (no cross-core coupling, no locks)
// and derivable from (Seed, Core) alone.
func New(spec Spec, env Env) Policy {
	switch spec.Kind {
	case KindRetry:
		n := spec.N
		if n < 1 {
			n = DefaultRetryN
		}
		return &retryPolicy{env: env, n: n, exp: spec.Backoff != "none"}
	case KindEWMA:
		alpha, floor := spec.Alpha, spec.Floor
		if alpha == 0 {
			alpha = DefaultAlpha
		}
		if floor == 0 {
			floor = DefaultFloor
		}
		return &ewmaPolicy{env: env, alpha: alpha, floor: floor, rate: make(map[int]float64, 8)}
	default:
		return clearPolicy{env: env}
	}
}

// OverrideAllowed reports whether a policy may answer decided when the
// mechanism proposed proposed — the legality rule documented on Decision,
// shared by the cpu enforcement point and the decision-table tests.
func OverrideAllowed(proposed, decided clear.RetryMode) bool {
	return decided == proposed || decided == clear.RetryFallback
}
