package policy

import (
	clear "repro/internal/core"
	"repro/internal/sim"
)

// retryPolicy is the sapling-style bounded-retry engine: a fixed budget of N
// conflict retries before fallback, with deterministic FNV-jittered
// exponential backoff. Unlike the default policy it draws nothing from the
// core RNG — the delay is a hash of (seed, core, AR, retry count), so two
// runs of the same spec produce identical backoff sequences even across
// schedule perturbations, and the jitter still de-correlates cores hitting
// the same contended line.
type retryPolicy struct {
	env Env
	n   int
	exp bool
}

func (p *retryPolicy) Decide(ctx *Context) Decision {
	d := Decision{Mode: ctx.Proposed}
	if d.Mode == clear.RetrySCL || d.Mode == clear.RetryNSCL {
		// Locked retries make progress by locking; no delay.
		return d
	}
	if !p.exp || p.env.BackoffBase == 0 {
		return d
	}
	shift := ctx.ConflictRetries
	if shift > 6 {
		shift = 6
	}
	window := uint64(p.env.BackoffBase) << uint(shift)
	d.Backoff = sim.Tick(fnvMix(p.env.Seed, uint64(p.env.Core), uint64(ctx.ProgID), uint64(ctx.ConflictRetries)) % window)
	return d
}

func (p *retryPolicy) BudgetExhausted(conflictRetries int) bool {
	return conflictRetries > p.n
}

func (p *retryPolicy) PreferNonSpec(progID int) bool { return false }

func (p *retryPolicy) OnCommit(o Outcome) {}
func (p *retryPolicy) OnAbort(o Outcome)  {}

// fnvMix folds four words through the FNV-1a step function (word-wise
// rather than byte-wise: the avalanche of the 64-bit prime is plenty for
// jitter). Fixed arity keeps the decision path allocation-free.
func fnvMix(a, b, c, d uint64) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603) // FNV-1a offset basis
	h = (h ^ a) * prime
	h = (h ^ b) * prime
	h = (h ^ c) * prime
	h = (h ^ d) * prime
	// One xorshift finalizer so consecutive retry counts do not map to
	// near-consecutive hashes.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
