package policy

import (
	clear "repro/internal/core"
	"repro/internal/sim"
)

// clearPolicy is the paper-exact default: accept every §4.3 proposal and
// draw the legacy randomized exponential backoff from the core's RNG. Its
// draw discipline is load-bearing — one Rand call per decision except when
// the decided mode is cacheline-locked or backoff is disabled, exactly the
// sequence the pre-policy implementation produced — so the default policy
// is bit-identical to HEAD digests.
type clearPolicy struct {
	env Env
}

func (p clearPolicy) Decide(ctx *Context) Decision {
	d := Decision{Mode: ctx.Proposed}
	if p.env.BackoffBase == 0 {
		return d
	}
	if d.Mode == clear.RetrySCL || d.Mode == clear.RetryNSCL {
		// Cacheline-locked retries skip the backoff: their forward progress
		// comes from locking, and delaying them only widens the window in
		// which the learned footprint can go stale.
		return d
	}
	shift := ctx.ConflictRetries
	if shift > 6 {
		shift = 6
	}
	window := int(p.env.BackoffBase) << uint(shift)
	d.Backoff = sim.Tick(ctx.Rand(window))
	return d
}

func (p clearPolicy) BudgetExhausted(conflictRetries int) bool {
	return conflictRetries > p.env.RetryLimit
}

func (p clearPolicy) PreferNonSpec(progID int) bool { return false }

func (p clearPolicy) OnCommit(o Outcome) {}
func (p clearPolicy) OnAbort(o Outcome)  {}
