// Quickstart: build a tiny atomic region in the mini-ISA, run it on a
// simulated 8-core machine under the baseline HTM and under CLEAR, and
// compare how the two execute the same contended workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func main() {
	// The atomic region: transfer one unit between two accounts whose
	// addresses arrive in registers — no indirection, so CLEAR's discovery
	// will classify the footprint as immutable and re-execute the AR under
	// non-speculative cacheline locking (NS-CL) after its first conflict.
	b := isa.NewBuilder("quickstart/transfer")
	b.Load(isa.R8, isa.R0, 0)  // from balance
	b.Addi(isa.R8, isa.R8, -1) //   -= 1
	b.Store(isa.R0, 0, isa.R8)
	b.Load(isa.R9, isa.R1, 0) // to balance
	b.Addi(isa.R9, isa.R9, 1) //   += 1
	b.Store(isa.R1, 0, isa.R9)
	b.Halt()
	transfer := b.Build(1)

	fmt.Println(isa.Disassemble(transfer))
	fmt.Printf("static classification: %s\n\n", isa.Analyze(transfer).Mutability)

	for _, clearOn := range []bool{false, true} {
		run(transfer, clearOn)
	}
}

func run(transfer *isa.Program, clearOn bool) {
	const (
		cores    = 8
		accounts = 4 // few accounts => heavy conflicts
		ops      = 200
	)
	memory := mem.NewMemory(0x100000)
	addrs := make([]mem.Addr, accounts)
	for i := range addrs {
		addrs[i] = memory.AllocLine()
		memory.WriteWord(addrs[i], 1000)
	}

	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = cores
	cfg.CLEAR = clearOn

	machine, err := cpu.NewMachine(cfg, memory)
	if err != nil {
		log.Fatal(err)
	}

	feeds := make([]cpu.InvocationSource, cores)
	for tid := 0; tid < cores; tid++ {
		tid := tid
		n := 0
		feeds[tid] = cpu.FuncSource(func() (cpu.Invocation, bool) {
			if n >= ops {
				return cpu.Invocation{}, false
			}
			from := addrs[(tid+n)%accounts]
			to := addrs[(tid+n+1)%accounts]
			n++
			return cpu.Invocation{
				Prog: transfer,
				Regs: []cpu.RegInit{
					{Reg: isa.R0, Val: uint64(from)},
					{Reg: isa.R1, Val: uint64(to)},
				},
			}, true
		})
	}
	machine.AttachFeeds(feeds)
	if err := machine.Run(100_000_000); err != nil {
		log.Fatal(err)
	}

	// Atomicity check: transfers conserve the total.
	var total uint64
	for _, a := range addrs {
		total += memory.ReadWord(a)
	}
	if total != accounts*1000 {
		log.Fatalf("conservation violated: total=%d", total)
	}

	s := machine.Stats
	name := "baseline HTM (requester-wins)"
	if clearOn {
		name = "CLEAR"
	}
	fmt.Printf("--- %s ---\n", name)
	fmt.Printf("cycles            %d\n", s.Cycles)
	fmt.Printf("commits           %d (speculative %d, S-CL %d, NS-CL %d, fallback %d)\n",
		s.Commits, s.CommitsByMode[0], s.CommitsByMode[1], s.CommitsByMode[2], s.CommitsByMode[3])
	fmt.Printf("aborts/commit     %.2f\n", s.AbortsPerCommit())
	fmt.Printf("1-retry share     %.1f%% of retrying commits\n\n", 100*s.FirstRetryShare())
}
