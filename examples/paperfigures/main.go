// Paperfigures: drive the experiment harness programmatically — run a
// reduced evaluation matrix over a chosen benchmark subset and print the
// paper's figures for it, the way a research script would when exploring a
// new design point.
//
//	go run ./examples/paperfigures
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/harness"
)

func main() {
	opts := harness.QuickMatrixOptions()
	opts.Benchmarks = []string{"mwobject", "bitcoin", "queue", "labyrinth"}
	opts.Cores = 16
	opts.OpsPerThread = 60
	opts.Seeds = []uint64{1, 2}
	opts.RetryLimits = []int{2, 6}

	fmt.Printf("running %d benchmarks x %d configs x %d retry limits x %d seeds...\n\n",
		len(opts.Benchmarks), len(opts.Configs), len(opts.RetryLimits), len(opts.Seeds))
	m, err := harness.RunMatrix(opts)
	if err != nil {
		log.Fatal(err)
	}

	m.PrintFigure8(os.Stdout)
	fmt.Println()
	m.PrintFigure9(os.Stdout)
	fmt.Println()
	m.PrintFigure13(os.Stdout)

	// The harness exposes the aggregates directly for custom analysis.
	fmt.Println("\ncustom analysis: best retry limit per cell")
	for _, b := range opts.Benchmarks {
		for _, c := range opts.Configs {
			if cell := m.Cell(b, c); cell != nil {
				fmt.Printf("  %-10s %s: retry=%d  %.0f cycles  %.2f aborts/commit\n",
					b, c, cell.BestRetryLimit, cell.Cycles, cell.AbortsPerCommit)
			}
		}
	}
}
