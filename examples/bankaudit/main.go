// Bankaudit: a custom workload mixing the three AR archetypes of the paper
// (§3) — immutable transfers between fixed slots, likely-immutable updates
// through a read-only pointer table, and mutable audit scans that traverse a
// linked ledger — executed under all four evaluated configurations.
//
// The example shows how the decision tree routes each archetype to a
// different re-execution mode: transfers convert to NS-CL, pointer updates
// to S-CL, and the scans stay on the speculative/fallback path whenever the
// ledger outgrows the discovery window.
//
//	go run ./examples/bankaudit
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	cores    = 16
	accounts = 24
	ops      = 150
)

type bank struct {
	memory   *mem.Memory
	slots    []mem.Addr // direct accounts
	table    mem.Addr   // pointer table to premium accounts
	premium  []mem.Addr
	ledger   mem.Addr // linked list of audit records
	transfer *isa.Program
	bonus    *isa.Program
	audit    *isa.Program
}

func buildBank() *bank {
	bk := &bank{memory: mem.NewMemory(0x100000)}

	// Immutable AR: move R2 units between the slots at R0 and R1.
	b := isa.NewBuilder("bank/transfer")
	b.Load(isa.R8, isa.R0, 0)
	b.Sub(isa.R8, isa.R8, isa.R2)
	b.Store(isa.R0, 0, isa.R8)
	b.Load(isa.R9, isa.R1, 0)
	b.Add(isa.R9, isa.R9, isa.R2)
	b.Store(isa.R1, 0, isa.R9)
	b.Halt()
	bk.transfer = b.Build(1)

	// Likely-immutable AR: credit a premium account found through the
	// never-rewritten pointer table slot at R0.
	b = isa.NewBuilder("bank/bonus").DeclareIndirectionsImmutable()
	b.Load(isa.R8, isa.R0, 0)
	b.Load(isa.R9, isa.R8, 0)
	b.Add(isa.R9, isa.R9, isa.R2)
	b.Store(isa.R8, 0, isa.R9)
	b.Halt()
	bk.bonus = b.Build(2)

	// Mutable AR: walk the audit ledger counting entries tagged R1, then
	// append the count to the thread's result slot R2.
	b = isa.NewBuilder("bank/audit")
	b.Li(isa.R9, 0)
	b.Load(isa.R8, isa.R0, 0)
	b.Label("loop")
	b.Beq(isa.R8, isa.R14, "done")
	b.Load(isa.R10, isa.R8, 0) // tag
	b.Bne(isa.R10, isa.R1, "next")
	b.Addi(isa.R9, isa.R9, 1)
	b.Label("next")
	b.Load(isa.R8, isa.R8, 8) // next
	b.Jump("loop")
	b.Label("done")
	b.Store(isa.R2, 0, isa.R9)
	b.Halt()
	bk.audit = b.Build(3)

	// Data: accounts with 10_000 units each.
	bk.slots = make([]mem.Addr, accounts)
	for i := range bk.slots {
		bk.slots[i] = bk.memory.AllocLine()
		bk.memory.WriteWord(bk.slots[i], 10_000)
	}
	bk.table = bk.memory.AllocWords(8, mem.LineSize)
	bk.premium = make([]mem.Addr, 8)
	for i := range bk.premium {
		bk.premium[i] = bk.memory.AllocLine()
		bk.memory.WriteWord(bk.premium[i], 10_000)
		bk.memory.WriteWord(bk.table+mem.Addr(i*8), uint64(bk.premium[i]))
	}
	// A 20-record audit ledger (small enough for discovery to hold).
	bk.ledger = bk.memory.AllocLine()
	var head uint64
	for i := 0; i < 20; i++ {
		n := bk.memory.AllocLine()
		bk.memory.WriteWord(n+0, uint64(i%4)) // tag
		bk.memory.WriteWord(n+8, head)        // next
		head = uint64(n)
	}
	bk.memory.WriteWord(bk.ledger, head)
	return bk
}

func (bk *bank) totalFunds() uint64 {
	var t uint64
	for _, s := range bk.slots {
		t += bk.memory.ReadWord(s)
	}
	for _, p := range bk.premium {
		t += bk.memory.ReadWord(p)
	}
	return t
}

func main() {
	for _, cfg := range []struct {
		name           string
		clear, powertm bool
	}{
		{"B  requester-wins", false, false},
		{"P  PowerTM", false, true},
		{"C  CLEAR", true, false},
		{"W  CLEAR+PowerTM", true, true},
	} {
		bk := buildBank()
		before := bk.totalFunds()

		sys := cpu.DefaultSystemConfig()
		sys.Cores = cores
		sys.CLEAR = cfg.clear
		sys.PowerTM = cfg.powertm
		machine, err := cpu.NewMachine(sys, bk.memory)
		if err != nil {
			log.Fatal(err)
		}

		results := make([]mem.Addr, cores)
		for i := range results {
			results[i] = bk.memory.AllocLine()
		}
		feeds := make([]cpu.InvocationSource, cores)
		for tid := 0; tid < cores; tid++ {
			rng := sim.NewRNG(uint64(tid) + 42)
			// Zipf-skewed account choice: a handful of hot accounts carry
			// most transfers, the contention pattern CLEAR thrives on.
			zipf := sim.NewZipf(rng, 0.9, accounts)
			tid := tid
			n := 0
			feeds[tid] = cpu.FuncSource(func() (cpu.Invocation, bool) {
				if n >= ops {
					return cpu.Invocation{}, false
				}
				n++
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // 50% transfers
					i := zipf.Next()
					j := (i + 1 + rng.Intn(accounts-1)) % accounts
					return cpu.Invocation{Prog: bk.transfer, Regs: []cpu.RegInit{
						{Reg: isa.R0, Val: uint64(bk.slots[i])},
						{Reg: isa.R1, Val: uint64(bk.slots[j])},
						{Reg: isa.R2, Val: uint64(1 + rng.Intn(9))},
					}}, true
				case 5, 6, 7: // 30% bonuses
					return cpu.Invocation{Prog: bk.bonus, Regs: []cpu.RegInit{
						{Reg: isa.R0, Val: uint64(bk.table + mem.Addr(rng.Intn(8)*8))},
						{Reg: isa.R2, Val: 0}, // bonus of zero keeps funds conserved
					}}, true
				default: // 20% audits
					return cpu.Invocation{Prog: bk.audit, Regs: []cpu.RegInit{
						{Reg: isa.R0, Val: uint64(bk.ledger)},
						{Reg: isa.R1, Val: uint64(rng.Intn(4))},
						{Reg: isa.R2, Val: uint64(results[tid])},
					}}, true
				}
			})
		}
		machine.AttachFeeds(feeds)
		if err := machine.Run(400_000_000); err != nil {
			log.Fatal(err)
		}
		if after := bk.totalFunds(); after != before {
			log.Fatalf("%s: funds not conserved: %d -> %d", cfg.name, before, after)
		}

		s := machine.Stats
		fmt.Printf("%-18s cycles=%8d  aborts/commit=%5.2f  spec=%4d S-CL=%4d NS-CL=%4d fallback=%4d\n",
			cfg.name, s.Cycles, s.AbortsPerCommit(),
			s.CommitsByMode[0], s.CommitsByMode[1], s.CommitsByMode[2], s.CommitsByMode[3])
	}
}
