// Deadlock: a direct reenactment of Figures 5 and 6 of the paper — the
// wait-for cycles that cacheline locking can create, and how CLEAR's
// NACK-and-retry protocol dissolves them.
//
// Scenario (Fig. 5): core 0 holds cacheline B locked and loads A; core 1
// holds A locked and loads B. With a naive "hold the request at the locked
// line" directory the two requests wait forever. With CLEAR's protocol the
// non-locking loads are NACKed, one AR aborts, and the system progresses.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
)

func main() {
	lineA := mem.Addr(0x1000).Line()
	lineB := mem.Addr(0x2000).Line()

	fmt.Println("=== naive design: requests to locked lines are held (Fig. 5/6) ===")
	{
		cfg := coherence.DefaultConfig()
		cfg.NumCores = 3
		cfg.HoldOnLocked = true
		dir := coherence.NewDirectory(cfg)

		must(dir.Lock(0, lineB, coherence.ReqAttrs{}))
		must(dir.Lock(1, lineA, coherence.ReqAttrs{}))
		fmt.Printf("core 0 locked %s; core 1 locked %s\n", lineB, lineA)

		// The cross reads are parked at the blocked entries: a cycle.
		dir.Read(0, lineA, coherence.ReqAttrs{})
		dir.Read(1, lineB, coherence.ReqAttrs{})
		fmt.Printf("core 0's read of %s: held (queue length %d)\n", lineA, dir.HeldCount(lineA))
		fmt.Printf("core 1's read of %s: held (queue length %d)\n", lineB, dir.HeldCount(lineB))
		fmt.Println("neither AR can reach its end to unlock -> deadlock")

		// Fig. 6: a third core's request joins a blocked entry and would
		// also wait forever.
		dir.Read(2, lineA, coherence.ReqAttrs{})
		fmt.Printf("core 2's read of %s: held too (queue length %d)\n\n", lineA, dir.HeldCount(lineA))
	}

	fmt.Println("=== CLEAR's design: NACK the nackable, retry the rest (§4.4) ===")
	{
		cfg := coherence.DefaultConfig()
		cfg.NumCores = 3
		dir := coherence.NewDirectory(cfg)

		must(dir.Lock(0, lineB, coherence.ReqAttrs{}))
		must(dir.Lock(1, lineA, coherence.ReqAttrs{}))
		fmt.Printf("core 0 locked %s; core 1 locked %s\n", lineB, lineA)

		// S-CL loads that did not lock their target are nackable: the
		// directory refuses them and the requesting AR aborts, releasing
		// its own locks — the cycle is broken.
		res := dir.Read(0, lineA, coherence.ReqAttrs{NackableLoad: true})
		fmt.Printf("core 0's nackable load of %s: nacked=%v -> core 0 aborts its AR\n", lineA, res.Nacked)
		dir.UnlockAll(0)
		fmt.Printf("core 0 released its locks; %d line(s) still locked\n", dir.LockedLines())

		// Core 1 can now finish: its load of B retries until the line is
		// free instead of blocking the directory.
		res = dir.Read(1, lineB, coherence.ReqAttrs{})
		fmt.Printf("core 1's load of %s: retry=%v (line was just unlocked: granted=%v)\n",
			lineB, res.Retry, !res.Retry && !res.Nacked)

		// And the third core's plain request is told to come back later —
		// the directory entry never blocks (the Fig. 6 fix).
		res = dir.Read(2, lineA, coherence.ReqAttrs{})
		fmt.Printf("core 2's load of %s (still locked by core 1): retry=%v, directory unblocked\n",
			lineA, res.Retry)
	}
}

func must(res coherence.LockResult) {
	if res.Retry || res.Nacked {
		panic("unexpected lock refusal in scripted scenario")
	}
}
