// Package repro is a from-scratch Go reproduction of "Bounding Speculative
// Execution of Atomic Regions to a Single Retry" (ASPLOS 2024): the CLEAR
// cacheline-locked atomic-region technique, the discrete-event multicore
// simulator it is evaluated on, the nineteen benchmarks of the paper's
// evaluation, and a harness that regenerates every table and figure.
//
// The package tree:
//
//	internal/sim        deterministic discrete-event engine
//	internal/mem        simulated physical memory and address arithmetic
//	internal/cache      set-associative cache geometry and residency/pinning
//	internal/coherence  directory MESI with cacheline locking and NACKs
//	internal/isa        the mini register ISA and the mutability analyzer
//	internal/htm        abort taxonomy, fallback lock, PowerTM token
//	internal/core       CLEAR: ERT, ALT, CRT, discovery, decision tree
//	internal/cpu        per-core interpreter and execution-mode state machine
//	internal/workload   the 19 benchmarks
//	internal/stats      metrics and the energy model
//	internal/harness    experiment runner and figure/table formatters
//
// The benchmarks in bench_test.go regenerate the paper's experiments; see
// EXPERIMENTS.md for the paper-versus-measured record.
package repro
