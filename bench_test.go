package repro

// One benchmark per table and figure of the paper's evaluation (§6–§7),
// plus ablations of CLEAR's design choices. Each figure benchmark shares a
// single evaluation matrix (computed once per `go test -bench` process at a
// reduced-but-faithful scale) and reports its headline numbers through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation:
//
//	norm_time_C      Figure 8's CLEAR/requester-wins geomean
//	aborts/commit_C  Figure 9
//	norm_energy_C    Figure 10
//	retry1_share_C   Figure 13
//	...
//
// Full-scale runs (32 cores, retry sweep 1..8, multi-seed) go through
// cmd/clearbench; set -clearbench.full to use that scale here too.
import (
	"flag"
	"fmt"
	"io"
	"math"
	"sync"
	"testing"

	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

var fullScale = flag.Bool("clearbench.full", false, "run figure benchmarks at the paper's full 32-core scale")

var (
	matrixOnce sync.Once
	matrix     *harness.Matrix
	matrixErr  error
)

// benchMatrix lazily runs the shared evaluation sweep.
func benchMatrix(b *testing.B) *harness.Matrix {
	b.Helper()
	matrixOnce.Do(func() {
		opts := harness.DefaultMatrixOptions()
		if !*fullScale {
			opts.Cores = 16
			opts.OpsPerThread = 48
			opts.Seeds = []uint64{1}
			opts.RetryLimits = []int{2, 6}
		}
		matrix, matrixErr = harness.RunMatrix(opts)
	})
	if matrixErr != nil {
		b.Fatal(matrixErr)
	}
	return matrix
}

// geoAcross folds a per-benchmark normalized metric across the matrix.
func geoAcross(m *harness.Matrix, cfg harness.ConfigID, metric func(*harness.Aggregate) float64) float64 {
	prod, n := 1.0, 0
	for _, bench := range m.Opts.Benchmarks {
		v := m.Normalized(bench, cfg, metric)
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}

func meanAcross(m *harness.Matrix, cfg harness.ConfigID, metric func(*harness.Aggregate) float64) float64 {
	sum, n := 0.0, 0
	for _, bench := range m.Opts.Benchmarks {
		if cell := m.Cell(bench, cfg); cell != nil {
			sum += metric(cell)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable1 regenerates Table 1: the static mutability classification
// of every benchmark's atomic regions.
func BenchmarkTable1(b *testing.B) {
	var imm, likely, mut int
	for i := 0; i < b.N; i++ {
		imm, likely, mut = 0, 0, 0
		for _, name := range workload.Names() {
			bench, err := workload.New(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range bench.ARs() {
				switch isa.Analyze(p).Mutability {
				case isa.Immutable:
					imm++
				case isa.LikelyImmutable:
					likely++
				default:
					mut++
				}
			}
		}
	}
	b.ReportMetric(float64(imm), "ARs_immutable")
	b.ReportMetric(float64(likely), "ARs_likely")
	b.ReportMetric(float64(mut), "ARs_mutable")
}

// BenchmarkTable2 exercises machine construction with the Table 2
// configuration (the simulated hardware the evaluation runs on).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.PrintTable2(io.Discard, 32)
	}
}

// BenchmarkFigure1 reports the fraction of retrying ARs whose footprint is
// at most 32 lines and unchanged on the first retry (paper average: 0.602).
func BenchmarkFigure1(b *testing.B) {
	m := benchMatrix(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		m.PrintFigure1(io.Discard)
		ratio = meanAcross(m, harness.ConfigB, func(a *harness.Aggregate) float64 { return a.Fig1Ratio })
	}
	b.ReportMetric(ratio, "immutable_ratio")
	b.ReportMetric(harness.PaperAverages.Fig1Ratio, "paper_ratio")
}

// BenchmarkFigure8 reports normalized execution time (paper geomeans:
// P 0.873, C 0.726, W 0.650).
func BenchmarkFigure8(b *testing.B) {
	m := benchMatrix(b)
	cycles := func(a *harness.Aggregate) float64 { return a.Cycles }
	for i := 0; i < b.N; i++ {
		m.PrintFigure8(io.Discard)
	}
	for _, cfg := range harness.AllConfigs {
		b.ReportMetric(geoAcross(m, cfg, cycles), "norm_time_"+cfg.String())
	}
}

// BenchmarkFigure9 reports aborts per committed transaction (paper: B 7.9,
// P 6.6, C 1.6, W 2.3).
func BenchmarkFigure9(b *testing.B) {
	m := benchMatrix(b)
	apc := func(a *harness.Aggregate) float64 { return a.AbortsPerCommit }
	for i := 0; i < b.N; i++ {
		m.PrintFigure9(io.Discard)
	}
	for _, cfg := range harness.AllConfigs {
		b.ReportMetric(meanAcross(m, cfg, apc), "aborts_per_commit_"+cfg.String())
	}
}

// BenchmarkFigure10 reports normalized energy (paper: C 0.736, W 0.694).
func BenchmarkFigure10(b *testing.B) {
	m := benchMatrix(b)
	energy := func(a *harness.Aggregate) float64 { return a.Energy }
	for i := 0; i < b.N; i++ {
		m.PrintFigure10(io.Discard)
	}
	for _, cfg := range harness.AllConfigs {
		b.ReportMetric(geoAcross(m, cfg, energy), "norm_energy_"+cfg.String())
	}
}

// BenchmarkFigure11 reports the abort-type breakdown; the headline metric is
// the memory-conflict share under the baseline.
func BenchmarkFigure11(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		m.PrintFigure11(io.Discard)
	}
	for _, cfg := range harness.AllConfigs {
		b.ReportMetric(meanAcross(m, cfg, func(a *harness.Aggregate) float64 {
			return a.AbortShares[0] // memory-conflict bucket
		}), "memconflict_share_"+cfg.String())
	}
}

// BenchmarkFigure12 reports the commit-mode breakdown; the headline metrics
// are the CL-mode (S-CL + NS-CL) and fallback shares under CLEAR.
func BenchmarkFigure12(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		m.PrintFigure12(io.Discard)
	}
	clShare := func(a *harness.Aggregate) float64 {
		return a.ModeShares[stats.CommitSCL] + a.ModeShares[stats.CommitNSCL]
	}
	fbShare := func(a *harness.Aggregate) float64 {
		return a.ModeShares[stats.CommitFallback]
	}
	b.ReportMetric(meanAcross(m, harness.ConfigC, clShare), "cl_mode_share_C")
	b.ReportMetric(meanAcross(m, harness.ConfigB, fbShare), "fallback_share_B")
	b.ReportMetric(meanAcross(m, harness.ConfigC, fbShare), "fallback_share_C")
}

// BenchmarkFigure13 reports the single-retry and fallback shares of retrying
// commits (paper: first-retry B 35.4% -> W 64.4%; fallback 37.2% -> 15.4%).
func BenchmarkFigure13(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		m.PrintFigure13(io.Discard)
	}
	for _, cfg := range harness.AllConfigs {
		b.ReportMetric(meanAcross(m, cfg, func(a *harness.Aggregate) float64 { return a.FirstRetryShare }),
			"retry1_share_"+cfg.String())
		b.ReportMetric(meanAcross(m, cfg, func(a *harness.Aggregate) float64 { return a.FallbackShare }),
			"fallback_share_"+cfg.String())
	}
}

// ablationCompare runs one benchmark under CLEAR with and without an
// ablation switch and reports the cycle ratio (ablated / full CLEAR).
func ablationCompare(b *testing.B, bench string, tweak func(*harness.RunParams)) float64 {
	b.Helper()
	base := harness.DefaultRunParams(bench, harness.ConfigC)
	base.Cores = 16
	base.OpsPerThread = 48
	ablated := base
	tweak(&ablated)
	rBase, err := harness.Run(base)
	if err != nil {
		b.Fatal(err)
	}
	rAbl, err := harness.Run(ablated)
	if err != nil {
		b.Fatal(err)
	}
	return float64(rAbl.Stats.Cycles) / float64(rBase.Stats.Cycles)
}

// BenchmarkAblationDiscoveryContinuation isolates §4.1's failed-mode
// continuation: without it, conflicted discoveries abort immediately and
// CLEAR converts almost nothing.
func BenchmarkAblationDiscoveryContinuation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = ablationCompare(b, "mwobject", func(p *harness.RunParams) {
			p.DisableDiscoveryContinuation = true
		})
	}
	b.ReportMetric(ratio, "cycles_ratio_no_continuation")
}

// BenchmarkAblationSCLLockAll evaluates §4.4.2's rejected alternative:
// locking the whole learned footprint in S-CL instead of writes+CRT.
func BenchmarkAblationSCLLockAll(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = ablationCompare(b, "bitcoin", func(p *harness.RunParams) {
			p.SCLLockAllReads = true
		})
	}
	b.ReportMetric(ratio, "cycles_ratio_lock_all_reads")
}

// BenchmarkHarnessRunHot is the hot-path yardstick of the host-performance
// work: one full `harness.Run` of intruder under ConfigC at the paper's 32
// cores. scripts/bench_hotpath.sh tracks its ns/op and allocs/op across PRs
// in BENCH_hotpath.json.
func BenchmarkHarnessRunHot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := harness.DefaultRunParams("intruder", harness.ConfigC)
		if _, err := harness.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessRunHotTraced is the same run with the binary event
// tracer attached (stream discarded): the delta against
// BenchmarkHarnessRunHot prices the observability layer when it is ON; the
// detached cost is a nil pointer compare per hook site, so
// BenchmarkHarnessRunHot itself must stay allocation-identical to its
// pre-tracer baseline.
func BenchmarkHarnessRunHotTraced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := harness.DefaultRunParams("intruder", harness.ConfigC)
		p.TraceWriter = io.Discard
		if _, err := harness.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessRunHotMetrics is the same run with a metrics registry
// attached: the delta against BenchmarkHarnessRunHot prices the instrument
// collector when it is ON. CI holds this under an alloc budget — the
// collector's hot path is pure atomics, so the only allocations beyond the
// bare run are the registry, its series, and the per-core collector state.
func BenchmarkHarnessRunHotMetrics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := harness.DefaultRunParams("intruder", harness.ConfigC)
		p.Metrics = metrics.NewRegistry()
		if _, err := harness.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (host time per
// simulated event) on a contended workload — the practical cost of using
// this simulator as a research vehicle.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := harness.DefaultRunParams("hashmap", harness.ConfigW)
		p.Cores = 16
		p.OpsPerThread = 40
		p.Seed = uint64(i + 1)
		if _, err := harness.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationALTSize sweeps the Addresses-to-Lock Table capacity on a
// mid-footprint benchmark: a small ALT rejects conversions (footprints
// overflow), a large one admits more of them.
func BenchmarkAblationALTSize(b *testing.B) {
	for _, size := range []int{8, 16, 32, 64} {
		size := size
		b.Run(fmt.Sprintf("alt%d", size), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				p := harness.DefaultRunParams("sorted-list", harness.ConfigC)
				p.Cores = 16
				p.OpsPerThread = 48
				p.ALTEntries = size
				res, err := harness.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Stats.Cycles)
			}
			b.ReportMetric(cycles, "sim_cycles")
		})
	}
}

// BenchmarkAblationERTSize sweeps the Explored Region Table: bayes has 14
// ARs, so an undersized ERT thrashes and keeps re-learning convertibility.
func BenchmarkAblationERTSize(b *testing.B) {
	for _, size := range []int{2, 4, 16} {
		size := size
		b.Run(fmt.Sprintf("ert%d", size), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				p := harness.DefaultRunParams("bayes", harness.ConfigC)
				p.Cores = 16
				p.OpsPerThread = 32
				p.ERTEntries = size
				res, err := harness.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Stats.Cycles)
			}
			b.ReportMetric(cycles, "sim_cycles")
		})
	}
}

// BenchmarkSLEvsHTM compares CLEAR over in-core speculation (§4.1) with
// CLEAR over HTM (§4.2) on a benchmark whose traversals strain the in-core
// window.
func BenchmarkSLEvsHTM(b *testing.B) {
	for _, mode := range []struct {
		name string
		sle  bool
	}{{"HTM", false}, {"SLE", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				p := harness.DefaultRunParams("sorted-list", harness.ConfigC)
				p.Cores = 16
				p.OpsPerThread = 48
				p.SLE = mode.sle
				res, err := harness.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Stats.Cycles)
			}
			b.ReportMetric(cycles, "sim_cycles")
		})
	}
}

// BenchmarkStaticLockingTradeoffs demonstrates §1's assessment of the
// non-speculative multi-address approaches (§2.2): static cacheline locking
// wins on contended read-modify-write regions (no retries ever), but
// degrades low-contention regions that read shared data, because
// "exclusivity is requested also for cachelines that are only read, thus
// causing extra invalidation events".
func BenchmarkStaticLockingTradeoffs(b *testing.B) {
	build := func(sharedReads int) *isa.Program {
		pb := isa.NewBuilder("tradeoff")
		// Read sharedReads shared config lines (addresses in R1..), then
		// increment a private counter at R0.
		for i := 0; i < sharedReads; i++ {
			pb.Load(isa.R8, isa.Reg(1+i), 0)
		}
		pb.Load(isa.R9, isa.R0, 0)
		pb.Addi(isa.R9, isa.R9, 1)
		pb.Store(isa.R0, 0, isa.R9)
		pb.Halt()
		return pb.Build(1)
	}

	run := func(b *testing.B, staticLocking bool, sharedReads int) float64 {
		b.Helper()
		const cores, ops = 16, 60
		memory := mem.NewMemory(0x100000)
		shared := make([]mem.Addr, sharedReads)
		for i := range shared {
			shared[i] = memory.AllocLine()
		}
		private := make([]mem.Addr, cores)
		for i := range private {
			private[i] = memory.AllocLine()
		}
		cfg := cpu.DefaultSystemConfig()
		cfg.Cores = cores
		cfg.StaticLocking = staticLocking
		m, err := cpu.NewMachine(cfg, memory)
		if err != nil {
			b.Fatal(err)
		}
		prog := build(sharedReads)
		feeds := make([]cpu.InvocationSource, cores)
		for tid := 0; tid < cores; tid++ {
			regs := []cpu.RegInit{{Reg: isa.R0, Val: uint64(private[tid])}}
			for i, s := range shared {
				regs = append(regs, cpu.RegInit{Reg: isa.Reg(1 + i), Val: uint64(s)})
			}
			invs := make([]cpu.Invocation, ops)
			for j := range invs {
				invs[j] = cpu.Invocation{Prog: prog, Regs: regs}
			}
			feeds[tid] = &cpu.SliceSource{Invs: invs}
		}
		m.AttachFeeds(feeds)
		if err := m.Run(400_000_000); err != nil {
			b.Fatal(err)
		}
		return float64(m.Stats.Cycles)
	}

	b.Run("shared-reads", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			spec := run(b, false, 4)
			static := run(b, true, 4)
			ratio = static / spec
		}
		// Expected > 1: locking read-shared lines exclusively ping-pongs.
		b.ReportMetric(ratio, "static_over_speculative")
	})
	b.Run("contended-rmw", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			// Every thread updates the same line: speculation thrashes,
			// locking serialises cleanly. Expected < 1.
			spec := runSharedCounter(b, false)
			static := runSharedCounter(b, true)
			ratio = static / spec
		}
		b.ReportMetric(ratio, "static_over_speculative")
	})
}

func runSharedCounter(b *testing.B, staticLocking bool) float64 {
	b.Helper()
	const cores, ops = 16, 60
	memory := mem.NewMemory(0x100000)
	x := memory.AllocLine()
	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = cores
	cfg.StaticLocking = staticLocking
	m, err := cpu.NewMachine(cfg, memory)
	if err != nil {
		b.Fatal(err)
	}
	pb := isa.NewBuilder("counter")
	pb.Load(isa.R8, isa.R0, 0)
	pb.Addi(isa.R8, isa.R8, 1)
	pb.Store(isa.R0, 0, isa.R8)
	pb.Halt()
	prog := pb.Build(1)
	feeds := make([]cpu.InvocationSource, cores)
	for tid := 0; tid < cores; tid++ {
		invs := make([]cpu.Invocation, ops)
		for j := range invs {
			invs[j] = cpu.Invocation{Prog: prog, Regs: []cpu.RegInit{{Reg: isa.R0, Val: uint64(x)}}}
		}
		feeds[tid] = &cpu.SliceSource{Invs: invs}
	}
	m.AttachFeeds(feeds)
	if err := m.Run(400_000_000); err != nil {
		b.Fatal(err)
	}
	if got := memory.ReadWord(x); got != cores*ops {
		b.Fatalf("counter %d, want %d", got, cores*ops)
	}
	return float64(m.Stats.Cycles)
}

// BenchmarkMeshVsCrossbar prices the interconnect substitution: the same
// workload over the Table 2 crossbar and over a 2D mesh with distributed
// directory banks.
func BenchmarkMeshVsCrossbar(b *testing.B) {
	for _, topo := range []struct {
		name string
		mesh bool
	}{{"crossbar", false}, {"mesh", true}} {
		topo := topo
		b.Run(topo.name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				p := harness.DefaultRunParams("hashmap", harness.ConfigC)
				p.Cores = 16
				p.OpsPerThread = 48
				p.Mesh = topo.mesh
				res, err := harness.Run(p)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Stats.Cycles)
			}
			b.ReportMetric(cycles, "sim_cycles")
		})
	}
}
