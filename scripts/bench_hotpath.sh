#!/usr/bin/env bash
# bench_hotpath.sh — measure the simulation hot path and append a dated entry
# to the BENCH_hotpath.json history.
#
# Runs the hot-path micro/macro benchmarks:
#   BenchmarkEngineScheduleStep      (internal/sim)     event schedule+dispatch
#   BenchmarkDirectoryLockUnlockAll  (internal/coherence) CL lock walk + bulk unlock
#   BenchmarkHarnessRunHot           (root)             full intruder/ConfigC run
#   BenchmarkHarnessRunHotTraced     (root)             same run, tracer attached
#   BenchmarkHarnessRunHotMetrics    (root)             same run, metrics attached
#   BenchmarkTracerEmit              (internal/trace)   single-event emit cost
#
# It also records a small contended trace and embeds clearprof's
# retry-to-commit latency histogram summary into the entry, so the history
# tracks the simulated retry cost alongside the host-side numbers.
#
# and appends a dated entry to BENCH_hotpath.json in the repo root: the file
# holds a {"history": [...]} array, newest entry last, so successive runs
# build a progression record instead of overwriting the previous numbers. A
# pre-history single-entry file is migrated into the array on first append.
# Each entry carries the fresh numbers next to the recorded pre-optimisation
# baseline (the container/heap engine, per-op closures, and O(directory)
# UnlockAll — measured on the same host class before the rewrite; see
# DESIGN.md "Host performance").
#
# The tracing layer's overhead contract (DESIGN.md "Observability") is
# enforced here: with the tracer detached, HarnessRunHot must stay within the
# allocation budget below, and the tracer's per-event emit must be
# allocation-free.
#
# Usage: scripts/bench_hotpath.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_hotpath.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "bench_hotpath: engine ..." >&2
go test -run xxx -bench 'BenchmarkEngineScheduleStep$' -benchmem ./internal/sim/ >"$tmp/engine.txt"
echo "bench_hotpath: directory ..." >&2
go test -run xxx -bench 'BenchmarkDirectoryLockUnlockAll' -benchmem ./internal/coherence/ >"$tmp/dir.txt"
echo "bench_hotpath: harness (intruder/C, 32 cores) ..." >&2
go test -run xxx -bench 'BenchmarkHarnessRunHot$' -benchtime 5x -benchmem . >"$tmp/harness.txt"
echo "bench_hotpath: harness traced ..." >&2
go test -run xxx -bench 'BenchmarkHarnessRunHotTraced$' -benchtime 5x -benchmem . >"$tmp/traced.txt"
echo "bench_hotpath: harness with metrics ..." >&2
go test -run xxx -bench 'BenchmarkHarnessRunHotMetrics$' -benchtime 5x -benchmem . >"$tmp/metrics.txt"
echo "bench_hotpath: tracer emit ..." >&2
go test -run xxx -bench 'BenchmarkTracerEmit$' -benchmem ./internal/trace/ >"$tmp/emit.txt"
echo "bench_hotpath: retry-latency profile (hashmap/C, 4 cores) ..." >&2
go run ./cmd/cleartrace record -bench hashmap -config C -cores 4 -ops 24 -seed 3 -o "$tmp/hot.trace" >/dev/null 2>&1
go run ./cmd/clearprof profile -json "$tmp/hot.trace" | jq -c '.retry_latency' >"$tmp/retrylat.json"

# extract <file> <benchmark-regex> -> "ns_per_op allocs_per_op bytes_per_op"
extract() {
  awk -v pat="$2" '$1 ~ pat { ns=$3; b=$5; a=$7; print ns, a, b; exit }' "$1"
}

read -r eng_ns eng_allocs eng_bytes < <(extract "$tmp/engine.txt" '^BenchmarkEngineScheduleStep')
read -r dir256_ns _ _ < <(extract "$tmp/dir.txt" 'lines256')
read -r dir4096_ns _ _ < <(extract "$tmp/dir.txt" 'lines4096')
read -r dir65536_ns _ _ < <(extract "$tmp/dir.txt" 'lines65536')
read -r run_ns run_allocs run_bytes < <(extract "$tmp/harness.txt" '^BenchmarkHarnessRunHot')
read -r traced_ns traced_allocs traced_bytes < <(extract "$tmp/traced.txt" '^BenchmarkHarnessRunHotTraced')
read -r met_ns met_allocs met_bytes < <(extract "$tmp/metrics.txt" '^BenchmarkHarnessRunHotMetrics')
read -r emit_ns emit_allocs emit_bytes < <(extract "$tmp/emit.txt" '^BenchmarkTracerEmit')

# Tracing overhead contract. The detached-run allocation budget is the
# measured ~3.5k-allocation steady state (SoA hot state: dense memory,
# epoch-cleared line sets, arena-backed register presets) plus slack for
# host/runtime noise — a regression that reintroduces per-event or per-op
# allocation blows through it by orders of magnitude. The emit path must be
# allocation-free.
alloc_budget=8000
if [ "$run_allocs" -gt "$alloc_budget" ]; then
  echo "bench_hotpath: FAIL: HarnessRunHot allocs/op $run_allocs exceeds budget $alloc_budget (tracer detached)" >&2
  exit 1
fi
if [ "$met_allocs" -gt "$alloc_budget" ]; then
  echo "bench_hotpath: FAIL: HarnessRunHotMetrics allocs/op $met_allocs exceeds budget $alloc_budget (metrics attached)" >&2
  exit 1
fi
if [ "$emit_allocs" -ne 0 ]; then
  echo "bench_hotpath: FAIL: TracerEmit allocs/op $emit_allocs != 0 (emit path must not allocate)" >&2
  exit 1
fi
echo "bench_hotpath: alloc budget ok (detached $run_allocs <= $alloc_budget, metrics $met_allocs <= $alloc_budget, emit $emit_allocs)" >&2

speedup() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

entry="$tmp/entry.json"
cat >"$entry" <<EOF
{
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host": "$(go env GOHOSTOS)/$(go env GOHOSTARCH)",
  "go": "$(go env GOVERSION)",
  "benchmarks": {
    "EngineScheduleStep": {
      "before": { "ns_per_op": 94.32, "allocs_per_op": 2, "bytes_per_op": 48 },
      "after":  { "ns_per_op": $eng_ns, "allocs_per_op": $eng_allocs, "bytes_per_op": $eng_bytes },
      "speedup": $(speedup 94.32 "$eng_ns")
    },
    "DirectoryLockUnlockAll": {
      "before": { "lines256_ns": 2385, "lines4096_ns": 41755, "lines65536_ns": 1236586 },
      "after":  { "lines256_ns": $dir256_ns, "lines4096_ns": $dir4096_ns, "lines65536_ns": $dir65536_ns },
      "note": "before scales with directory size; after is flat (O(held locks))"
    },
    "HarnessRunHot": {
      "config": "intruder/ConfigC, 32 cores, 120 ops/thread",
      "before": { "ns_per_op": 101596584, "allocs_per_op": 824059, "bytes_per_op": 20021123 },
      "after":  { "ns_per_op": $run_ns, "allocs_per_op": $run_allocs, "bytes_per_op": $run_bytes },
      "speedup": $(speedup 101596584 "$run_ns"),
      "alloc_reduction": $(speedup 824059 "$run_allocs")
    },
    "HarnessRunHotTraced": {
      "config": "intruder/ConfigC, 32 cores, 120 ops/thread, tracer -> io.Discard",
      "after": { "ns_per_op": $traced_ns, "allocs_per_op": $traced_allocs, "bytes_per_op": $traced_bytes },
      "overhead_vs_detached": $(speedup "$traced_ns" "$run_ns")
    },
    "HarnessRunHotMetrics": {
      "config": "intruder/ConfigC, 32 cores, 120 ops/thread, metrics registry attached",
      "after": { "ns_per_op": $met_ns, "allocs_per_op": $met_allocs, "bytes_per_op": $met_bytes },
      "overhead_vs_detached": $(speedup "$met_ns" "$run_ns")
    },
    "TracerEmit": {
      "after": { "ns_per_op": $emit_ns, "allocs_per_op": $emit_allocs, "bytes_per_op": $emit_bytes },
      "note": "per-event encode+append; must be 0 allocs/op"
    }
  },
  "retry_latency": $(cat "$tmp/retrylat.json")
}
EOF

# Append the entry to the history (migrating a pre-history single-entry file).
if [ -s "$out" ]; then
  if jq -e 'has("history")' "$out" >/dev/null; then
    jq --slurpfile e "$entry" '.history += $e' "$out" >"$tmp/merged.json"
  else
    jq --slurpfile e "$entry" '{history: ([.] + $e)}' "$out" >"$tmp/merged.json"
  fi
  mv "$tmp/merged.json" "$out"
else
  jq -n --slurpfile e "$entry" '{history: $e}' >"$out"
fi
echo "bench_hotpath: appended entry $(jq '.history | length' "$out") to $out" >&2
